package feature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func mkTrace(wmax int, pre, post []int) *trace.Trace {
	return &trace.Trace{
		Env:           "A",
		WmaxThreshold: wmax,
		MSS:           536,
		Pre:           pre,
		Post:          post,
		TimedOut:      true,
	}
}

func renoTrace() *trace.Trace {
	return mkTrace(256,
		[]int{4, 8, 16, 32, 64, 128, 256, 512},
		[]int{0, 2, 4, 8, 16, 32, 64, 128, 256, 256, 257, 258, 259, 260, 261, 262, 263, 264})
}

func TestExtractEnvReno(t *testing.T) {
	e := ExtractEnv(renoTrace())
	if !e.Found {
		t.Fatal("boundary not found")
	}
	if math.Abs(e.Beta-0.5) > 1e-9 {
		t.Fatalf("beta = %v, want 0.5", e.Beta)
	}
	if e.G3 != 3 || e.G6 != 6 {
		t.Fatalf("G3/G6 = %v/%v, want 3/6", e.G3, e.G6)
	}
}

func TestExtractEnvCubicLikeBeta(t *testing.T) {
	// Boundary at 359 of 512: beta 0.70.
	tr := mkTrace(256,
		[]int{4, 8, 16, 32, 64, 128, 256, 512},
		[]int{0, 2, 4, 8, 16, 32, 64, 128, 256, 359, 361, 366, 377, 397, 426, 469, 526, 601})
	e := ExtractEnv(tr)
	if math.Abs(e.Beta-359.0/512) > 1e-9 {
		t.Fatalf("beta = %v, want %v", e.Beta, 359.0/512)
	}
	if e.G3 != 377-359 || e.G6 != 469-359 {
		t.Fatalf("G3/G6 = %v/%v", e.G3, e.G6)
	}
}

func TestExtractEnvWestwoodBetaZero(t *testing.T) {
	// Window stays far below w(tmo): the beta-floor rule reports 0.
	tr := mkTrace(256,
		[]int{4, 8, 16, 32, 64, 128, 256, 512},
		[]int{0, 2, 4, 7, 8, 9, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20})
	e := ExtractEnv(tr)
	if e.Beta != 0 {
		t.Fatalf("beta = %v, want 0 (below the plausible floor)", e.Beta)
	}
	if !e.Found {
		t.Fatal("boundary should still be located for G features")
	}
}

func TestExtractEnvNoBoundary(t *testing.T) {
	// Pure doubling throughout: no boundary, beta 0, G zero.
	tr := mkTrace(256,
		[]int{4, 8, 16, 32, 64, 128, 256, 512},
		[]int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536})
	e := ExtractEnv(tr)
	if e.Found || e.Beta != 0 || e.G3 != 0 || e.G6 != 0 {
		t.Fatalf("expected no boundary, got %+v", e)
	}
}

func TestExtractEnvInvalidTrace(t *testing.T) {
	tr := renoTrace()
	tr.TimedOut = false
	e := ExtractEnv(tr)
	if e.Found || e.Beta != 0 {
		t.Fatalf("invalid trace extracted: %+v", e)
	}
}

func TestAckLossEstimateRaisesThreshold(t *testing.T) {
	// ~30% ACK loss: slow start multiplies by ~1.7 per round; the Eq. 1
	// estimate must keep treating those rounds as doubling.
	tr := mkTrace(256,
		[]int{4, 8, 16, 32, 64, 128, 256, 512},
		[]int{0, 2, 3, 5, 9, 15, 26, 44, 75, 128, 218, 260, 261, 262, 263, 264, 265, 266})
	e := ExtractEnv(tr)
	if !e.Found {
		t.Fatal("boundary not found under ACK loss")
	}
	if e.AckLoss <= 0.15 {
		t.Fatalf("AckLoss = %v, want above the floor", e.AckLoss)
	}
	// Boundary belongs near 260, not in the middle of lossy slow start.
	if e.Beta < 0.4 {
		t.Fatalf("beta = %v; boundary landed inside slow start", e.Beta)
	}
}

func TestBetaClamps(t *testing.T) {
	// Boundary window above w(tmo) (threshold caching artifacts): beta
	// clamps at 2.0.
	tr := mkTrace(64,
		[]int{4, 8, 16, 32, 64, 130},
		[]int{0, 2, 4, 8, 16, 32, 64, 128, 256, 300, 301, 302, 303, 304, 305, 306, 307, 308})
	e := ExtractEnv(tr)
	if e.Beta != 2.0 {
		t.Fatalf("beta = %v, want clamped 2.0", e.Beta)
	}
}

func TestVectorFlagVegas(t *testing.T) {
	ta := renoTrace()
	// Environment B never reached 64 packets: no timeout, low windows.
	tb := &trace.Trace{Env: "B", WmaxThreshold: 256, Pre: []int{4, 8, 16, 32, 51, 51}}
	v := Extract(ta, tb)
	if v[VegasFlag] != 0 {
		t.Fatalf("flag = %v, want 0", v[VegasFlag])
	}
	if v[BetaB] != 0 || v[G3B] != 0 || v[G6B] != 0 {
		t.Fatalf("B features = %v, want zero", v)
	}
	if v[BetaA] != 0.5 {
		t.Fatalf("A beta = %v", v[BetaA])
	}
}

func TestVectorFlagSetWithValidB(t *testing.T) {
	v := Extract(renoTrace(), renoTrace())
	if v[VegasFlag] != 1 {
		t.Fatalf("flag = %v, want 1", v[VegasFlag])
	}
	if v[BetaB] != 0.5 {
		t.Fatalf("B beta = %v", v[BetaB])
	}
}

func TestVectorWmaxFeature(t *testing.T) {
	v := Extract(renoTrace(), nil)
	if v[WmaxLog2] != 8 {
		t.Fatalf("wmax feature = %v, want log2(256) = 8", v[WmaxLog2])
	}
}

func TestVectorString(t *testing.T) {
	v := Extract(renoTrace(), renoTrace())
	if s := v.String(); s == "" {
		t.Fatal("empty render")
	}
	if got := v.Slice(); len(got) != NumFeatures {
		t.Fatalf("Slice length = %d", len(got))
	}
}

// TestBetaRangeProperty: for arbitrary random traces, beta is always 0 or
// within [0.5, 2.0] -- the paper's clamping contract.
func TestBetaRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		post := make([]int, 18)
		w := 1
		for i := range post {
			w += rng.Intn(w + 2)
			post[i] = w
		}
		tr := mkTrace(64, []int{4, 8, 16, 32, 64, 80 + rng.Intn(100)}, post)
		e := ExtractEnv(tr)
		return e.Beta == 0 || (e.Beta >= 0.5 && e.Beta <= 2.0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestExtractionDeterministic: same trace, same features.
func TestExtractionDeterministic(t *testing.T) {
	a := Extract(renoTrace(), renoTrace())
	b := Extract(renoTrace(), renoTrace())
	if a != b {
		t.Fatalf("nondeterministic extraction: %v vs %v", a, b)
	}
}
