package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"
)

// newTestService spins up a service over an in-memory fake model and
// returns it with its HTTP test server.
func newTestService(t *testing.T, cfg Config, model *fakeClassifier) (*Service, *httptest.Server) {
	t.Helper()
	registerFakeCodec()
	reg := NewRegistry()
	reg.Add("default", model)
	s := New(reg, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func identifyBody(alg string, seed int64) map[string]any {
	return map[string]any{
		"server":    map[string]any{"algorithm": alg},
		"condition": map[string]any{"mean_rtt_ms": 40},
		"seed":      seed,
	}
}

func TestIdentifyEndpointAndCacheHit(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "CUBIC2", Confidence: 0.93})

	resp, data := postJSON(t, ts.URL+"/v1/identify", identifyBody("CUBIC2", 7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out IdentifyResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Valid || out.Label != "CUBIC2" || out.Confidence != 0.93 {
		t.Fatalf("identify = %+v", out)
	}
	if out.Cached {
		t.Fatal("first identification claims to be cached")
	}
	if out.Model != "default@1" {
		t.Fatalf("model version = %s, want default@1", out.Model)
	}
	if len(out.Features) == 0 || out.Wmax == 0 {
		t.Fatalf("missing pipeline detail in %+v", out)
	}

	// The identical request must be served from the cache.
	resp, data = postJSON(t, ts.URL+"/v1/identify", identifyBody("CUBIC2", 7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var again IdentifyResponse
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("repeated identification missed the cache")
	}
	// The cached response replays the original probe's timings; compare
	// the rest of the payload with the breakdown (a pointer) normalized.
	if out.Timings == nil || out.Timings.GatherMs <= 0 {
		t.Fatalf("sync response missing stage timings: %+v", out.Timings)
	}
	if again.Timings == nil || *again.Timings != *out.Timings {
		t.Fatalf("cached timings differ: %+v vs %+v", again.Timings, out.Timings)
	}
	again.Cached = out.Cached
	again.Timings = out.Timings
	if fmt.Sprint(again) != fmt.Sprint(out) {
		t.Fatalf("cached result differs:\n%+v\n%+v", again, out)
	}

	// A different seed is a different key.
	_, data = postJSON(t, ts.URL+"/v1/identify", identifyBody("CUBIC2", 8))
	var third IdentifyResponse
	if err := json.Unmarshal(data, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("different seed hit the cache")
	}
}

func TestIdentifyRejectsBadRequests(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "RENO", Confidence: 1})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown algorithm", map[string]any{"server": map[string]any{"algorithm": "QUIC"}}, http.StatusBadRequest},
		{"missing algorithm", map[string]any{"server": map[string]any{}}, http.StatusBadRequest},
		{"loss out of range", map[string]any{
			"server":    map[string]any{"algorithm": "RENO"},
			"condition": map[string]any{"loss_rate": 1.5},
		}, http.StatusBadRequest},
		{"negative rtt", map[string]any{
			"server":    map[string]any{"algorithm": "RENO"},
			"condition": map[string]any{"mean_rtt_ms": -1},
		}, http.StatusBadRequest},
		{"unknown model", map[string]any{
			"model":  "nope",
			"server": map[string]any{"algorithm": "RENO"},
		}, http.StatusNotFound},
		{"unknown field", map[string]any{
			"server": map[string]any{"algorithm": "RENO"},
			"sever":  map[string]any{},
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/identify", tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.want, data)
			}
			var e errorResponse
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Fatalf("error envelope missing: %s", data)
			}
		})
	}
}

// pollJob polls GET /v1/jobs/{id} until the job leaves the queued/running
// states or the deadline passes.
func pollJob(t *testing.T, base, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st JobStatus
		resp := getJSON(t, base+"/v1/jobs/"+id, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job status %d", resp.StatusCode)
		}
		if st.State != StateQueued && st.State != StateRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBatchLifecycle(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2}, &fakeClassifier{Label: "BIC", Confidence: 0.8})

	jobs := []map[string]any{
		{"server": map[string]any{"algorithm": "BIC"}, "seed": 1},
		{"server": map[string]any{"algorithm": "BIC"}, "seed": 2},
		{"server": map[string]any{"algorithm": "HSTCP"}, "condition": map[string]any{"loss_rate": 0.01}, "seed": 3},
	}
	resp, data := postJSON(t, ts.URL+"/v1/batch", map[string]any{"jobs": jobs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.JobID == "" || acc.Total != 3 || acc.Status != "/v1/jobs/"+acc.JobID {
		t.Fatalf("accepted = %+v", acc)
	}

	st := pollJob(t, ts.URL, acc.JobID, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	if st.Completed != 3 || len(st.Results) != 3 {
		t.Fatalf("job done with %d/%d results", st.Completed, len(st.Results))
	}
	for i, r := range st.Results {
		if !r.Valid || r.Label != "BIC" {
			t.Fatalf("result %d = %+v", i, r)
		}
		if r.Cached {
			t.Fatalf("result %d cached on a cold cache", i)
		}
	}

	// Resubmitting the identical batch must be answered fully from cache.
	resp, data = postJSON(t, ts.URL+"/v1/batch", map[string]any{"jobs": jobs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	st = pollJob(t, ts.URL, acc.JobID, 30*time.Second)
	if st.State != StateDone || st.CacheHits != 3 {
		t.Fatalf("resubmit: state %s, %d cache hits (want 3)", st.State, st.CacheHits)
	}
	for i, r := range st.Results {
		if !r.Cached {
			t.Fatalf("resubmitted result %d not cached", i)
		}
	}
}

func TestBatchValidationAndUnknownJob(t *testing.T) {
	_, ts := newTestService(t, Config{MaxBatchJobs: 2}, &fakeClassifier{Label: "RENO", Confidence: 1})

	resp, _ := postJSON(t, ts.URL+"/v1/batch", map[string]any{"jobs": []any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}

	three := []map[string]any{
		{"server": map[string]any{"algorithm": "RENO"}},
		{"server": map[string]any{"algorithm": "RENO"}, "seed": 2},
		{"server": map[string]any{"algorithm": "RENO"}, "seed": 3},
	}
	resp, data := postJSON(t, ts.URL+"/v1/batch", map[string]any{"jobs": three})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d (%s)", resp.StatusCode, data)
	}

	resp, data = postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"jobs": []map[string]any{{"server": map[string]any{"algorithm": "NOPE"}}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad job spec: status %d (%s)", resp.StatusCode, data)
	}

	if resp := getJSON(t, ts.URL+"/v1/jobs/job-999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}
}

func TestBatchQueueFullRejectsWith429(t *testing.T) {
	gate := make(chan struct{})
	model := &fakeClassifier{Label: "RENO", Confidence: 1, gate: gate}
	s, ts := newTestService(t, Config{Workers: 1, QueueSize: 1, Parallelism: 1}, model)
	defer close(gate)

	one := map[string]any{"jobs": []map[string]any{{"server": map[string]any{"algorithm": "RENO"}}}}

	// First job: picked up by the single worker and held at the gate.
	resp, data := postJSON(t, ts.URL+"/v1/batch", one)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d (%s)", resp.StatusCode, data)
	}
	var first BatchAccepted
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, first.JobID, StateRunning, 10*time.Second)

	// Second job sits in the queue; the third must bounce.
	resp, _ = postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"jobs": []map[string]any{{"server": map[string]any{"algorithm": "RENO"}, "seed": 2}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	resp, data = postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"jobs": []map[string]any{{"server": map[string]any{"algorithm": "RENO"}, "seed": 3}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
}

// waitForState polls the in-process job store until the job reaches want.
func waitForState(t *testing.T, s *Service, id, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, ok := s.lookupJob(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.status().State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (now %s)", id, want, j.status().State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJobCancellation(t *testing.T) {
	gate := make(chan struct{})
	model := &fakeClassifier{Label: "RENO", Confidence: 1, gate: gate}
	s, ts := newTestService(t, Config{Workers: 1, Parallelism: 1}, model)
	// Registered after newTestService so it runs before s.Close -- a gate
	// left shut would deadlock the executor shutdown on a failed test.
	releaseGate := sync.OnceFunc(func() { close(gate) })
	t.Cleanup(releaseGate)

	jobs := make([]map[string]any, 8)
	for i := range jobs {
		jobs[i] = map[string]any{"server": map[string]any{"algorithm": "RENO"}, "seed": i + 1}
	}
	resp, data := postJSON(t, ts.URL+"/v1/batch", map[string]any{"jobs": jobs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, acc.JobID, StateRunning, 10*time.Second)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+acc.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %v %v", err, resp.Status)
	}
	releaseGate() // release the blocked probe so the executor can wind down

	st := pollJob(t, ts.URL, acc.JobID, 30*time.Second)
	if st.State != StateCancelled {
		t.Fatalf("state after cancel = %s (%s)", st.State, st.Error)
	}
	if st.Completed >= len(jobs) {
		t.Fatalf("cancelled job completed all %d probes", st.Completed)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "VEGAS", Confidence: 0.7})

	var health struct {
		Status string   `json:"status"`
		Models []string `json:"models"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || len(health.Models) != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	// Two misses + one hit.
	postJSON(t, ts.URL+"/v1/identify", identifyBody("VEGAS", 1))
	postJSON(t, ts.URL+"/v1/identify", identifyBody("VEGAS", 2))
	postJSON(t, ts.URL+"/v1/identify", identifyBody("VEGAS", 1))

	var m MetricsSnapshot
	if resp := getJSON(t, ts.URL+"/metrics", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 2 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/2", m.Cache.Hits, m.Cache.Misses)
	}
	if m.Cache.HitRate < 0.32 || m.Cache.HitRate > 0.34 {
		t.Fatalf("hit rate = %v, want ~1/3", m.Cache.HitRate)
	}
	if m.Identifies != 2 {
		t.Fatalf("identifications_total = %d, want 2", m.Identifies)
	}
	if m.Requests < 5 {
		t.Fatalf("requests_total = %d, want >= 5", m.Requests)
	}
	if m.Labels["VEGAS"] != 2 {
		t.Fatalf("labels = %v, want VEGAS:2", m.Labels)
	}
	if len(m.Models) != 1 || m.Models[0].Version != "default@1" || !m.Models[0].Default {
		t.Fatalf("models = %+v", m.Models)
	}
	if m.InFlight != 0 {
		t.Fatalf("in_flight = %d at rest", m.InFlight)
	}
}

func TestModelsEndpointAndHotReload(t *testing.T) {
	dir := t.TempDir()
	path := saveFakeModel(t, dir, "m.json", "FIRST", 0.9)
	reg := NewRegistry()
	if _, err := reg.Load("default", path); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	body := identifyBody("RENO", 5)
	_, data := postJSON(t, ts.URL+"/v1/identify", body)
	var out IdentifyResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Label != "FIRST" || out.Model != "default@1" {
		t.Fatalf("pre-reload identify = %+v", out)
	}

	// Retrain offline (here: rewrite the file), then hot-swap.
	saveFakeModel(t, dir, "m.json", "SECOND", 0.8)
	resp, data := postJSON(t, ts.URL+"/v1/models/reload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, data)
	}
	var rel struct {
		Reloaded []ModelInfo `json:"reloaded"`
	}
	if err := json.Unmarshal(data, &rel); err != nil {
		t.Fatal(err)
	}
	if len(rel.Reloaded) != 1 || rel.Reloaded[0].Version != "default@2" {
		t.Fatalf("reloaded = %+v", rel.Reloaded)
	}

	// Same request: new model version means a cache miss and new weights.
	_, data = postJSON(t, ts.URL+"/v1/identify", body)
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Fatal("identify after reload served the old model's cache entry")
	}
	if out.Label != "SECOND" || out.Model != "default@2" {
		t.Fatalf("post-reload identify = %+v", out)
	}

	var models struct {
		Models []ModelInfo `json:"models"`
	}
	if resp := getJSON(t, ts.URL+"/v1/models", &models); resp.StatusCode != http.StatusOK {
		t.Fatalf("models status %d", resp.StatusCode)
	}
	if len(models.Models) != 1 || models.Models[0].Generation != 2 {
		t.Fatalf("models = %+v", models.Models)
	}
}

func TestServiceCloseFailsQueuedJobs(t *testing.T) {
	gate := make(chan struct{})
	model := &fakeClassifier{Label: "RENO", Confidence: 1, gate: gate}
	registerFakeCodec()
	reg := NewRegistry()
	reg.Add("default", model)
	s := New(reg, Config{Workers: 1, QueueSize: 4, Parallelism: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	one := func(seed int) map[string]any {
		return map[string]any{"jobs": []map[string]any{
			{"server": map[string]any{"algorithm": "RENO"}, "seed": seed},
		}}
	}
	resp, data := postJSON(t, ts.URL+"/v1/batch", one(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var running BatchAccepted
	if err := json.Unmarshal(data, &running); err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, running.JobID, StateRunning, 10*time.Second)
	resp, data = postJSON(t, ts.URL+"/v1/batch", one(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit queued: %d", resp.StatusCode)
	}
	var queued BatchAccepted
	if err := json.Unmarshal(data, &queued); err != nil {
		t.Fatal(err)
	}

	close(gate)
	s.Close()

	if st, _ := s.lookupJob(queued.JobID); st.status().State == StateQueued {
		t.Fatalf("queued job still queued after Close: %+v", st.status())
	}
}

func TestIdentifyAlgorithmNamedNoModelIs400(t *testing.T) {
	// The 404 mapping must key on the sentinel error, not on substrings a
	// client can plant in the algorithm name.
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "RENO", Confidence: 1})
	resp, data := postJSON(t, ts.URL+"/v1/identify", map[string]any{
		"server": map[string]any{"algorithm": "no model"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, data)
	}
}

func TestFinishedJobRetentionEviction(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1, JobRetention: 2}, &fakeClassifier{Label: "RENO", Confidence: 1})

	var ids []string
	for seed := 1; seed <= 3; seed++ {
		resp, data := postJSON(t, ts.URL+"/v1/batch", map[string]any{
			"jobs": []map[string]any{{"server": map[string]any{"algorithm": "RENO"}, "seed": seed}},
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d (%s)", seed, resp.StatusCode, data)
		}
		var acc BatchAccepted
		if err := json.Unmarshal(data, &acc); err != nil {
			t.Fatal(err)
		}
		if st := pollJob(t, ts.URL, acc.JobID, 30*time.Second); st.State != StateDone {
			t.Fatalf("job %s finished %s", acc.JobID, st.State)
		}
		ids = append(ids, acc.JobID)
	}

	// Two retained, the oldest evicted.
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+ids[0], nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("oldest job = %d, want 404 after eviction", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		if resp := getJSON(t, ts.URL+"/v1/jobs/"+id, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("retained job %s = %d", id, resp.StatusCode)
		}
	}
}

func TestCancelQueuedJobReportsImmediately(t *testing.T) {
	gate := make(chan struct{})
	model := &fakeClassifier{Label: "RENO", Confidence: 1, gate: gate}
	s, ts := newTestService(t, Config{Workers: 1, QueueSize: 2, Parallelism: 1}, model)
	releaseGate := sync.OnceFunc(func() { close(gate) })
	t.Cleanup(releaseGate)

	one := func(seed int) map[string]any {
		return map[string]any{"jobs": []map[string]any{
			{"server": map[string]any{"algorithm": "RENO"}, "seed": seed},
		}}
	}
	// Occupy the single worker, then queue a second job.
	resp, data := postJSON(t, ts.URL+"/v1/batch", one(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit running: %d", resp.StatusCode)
	}
	var running BatchAccepted
	if err := json.Unmarshal(data, &running); err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, running.JobID, StateRunning, 10*time.Second)
	resp, data = postJSON(t, ts.URL+"/v1/batch", one(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit queued: %d", resp.StatusCode)
	}
	var queued BatchAccepted
	if err := json.Unmarshal(data, &queued); err != nil {
		t.Fatal(err)
	}

	// DELETE of the still-queued job must reflect the cancel immediately,
	// not only after the busy worker drains to it.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(dresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if st.State != StateCancelled {
		t.Fatalf("DELETE response state = %s, want cancelled", st.State)
	}
	if got := getJSON(t, ts.URL+"/v1/jobs/"+queued.JobID, &st); got.StatusCode != http.StatusOK || st.State != StateCancelled {
		t.Fatalf("poll after cancel = %d / %s", got.StatusCode, st.State)
	}
	releaseGate()
}

func TestReloadRejectsClientSuppliedPath(t *testing.T) {
	dir := t.TempDir()
	path := saveFakeModel(t, dir, "m.json", "A", 0.9)
	reg := NewRegistry()
	if _, err := reg.Load("default", path); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	// A path field must be rejected outright (unknown field), never read.
	resp, data := postJSON(t, ts.URL+"/v1/models/reload", map[string]any{"name": "x", "path": "/etc/passwd"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reload with path = %d (%s)", resp.StatusCode, data)
	}
	// Reloading an unknown name is 404.
	resp, data = postJSON(t, ts.URL+"/v1/models/reload", map[string]any{"name": "ghost"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("reload unknown name = %d (%s)", resp.StatusCode, data)
	}
	// Reloading a known name by name works.
	resp, data = postJSON(t, ts.URL+"/v1/models/reload", map[string]any{"name": "default"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload by name = %d (%s)", resp.StatusCode, data)
	}
}

func TestIdentifyCoalescesConcurrentIdenticalRequests(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	model := &fakeClassifier{Label: "BIC", Confidence: 1, gate: gate, started: started}
	s, ts := newTestService(t, Config{}, model)
	releaseGate := sync.OnceFunc(func() { close(gate) })
	t.Cleanup(releaseGate)

	body := identifyBody("BIC", 4)
	results := make(chan IdentifyResponse, 2)
	post := func() {
		resp, data := postJSON(t, ts.URL+"/v1/identify", body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("status %d: %s", resp.StatusCode, data)
			results <- IdentifyResponse{}
			return
		}
		var out IdentifyResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Error(err)
		}
		results <- out
	}
	go post()
	<-started // leader is provably mid-probe
	go post()
	// Give the follower a moment to reach the singleflight wait, then let
	// the probe finish. Whether it coalesces or lands as a plain cache hit
	// afterwards, exactly one probe may run.
	time.Sleep(20 * time.Millisecond)
	releaseGate()

	a, b := <-results, <-results
	if a.Label != "BIC" || b.Label != "BIC" {
		t.Fatalf("responses: %+v / %+v", a, b)
	}
	if s.metrics.identifies.Load() != 1 {
		t.Fatalf("identifications executed = %d, want 1 (coalesced)", s.metrics.identifies.Load())
	}
	if s.metrics.cacheMisses.Load() != 1 || s.metrics.cacheHits.Load() != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1",
			s.metrics.cacheHits.Load(), s.metrics.cacheMisses.Load())
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	registerFakeCodec()
	reg := NewRegistry()
	reg.Add("default", &fakeClassifier{Label: "RENO", Confidence: 1})
	s := New(reg, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	s.Close()

	resp, data := postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"jobs": []map[string]any{{"server": map[string]any{"algorithm": "RENO"}}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after Close = %d (%s), want 503", resp.StatusCode, data)
	}
}

func TestBatchDeduplicatesIdenticalSpecs(t *testing.T) {
	s, ts := newTestService(t, Config{Workers: 1}, &fakeClassifier{Label: "STCP", Confidence: 1})

	dup := map[string]any{"server": map[string]any{"algorithm": "STCP"}, "seed": 9}
	resp, data := postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"jobs": []map[string]any{dup, {"server": map[string]any{"algorithm": "STCP"}, "seed": 10}, dup},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	st := pollJob(t, ts.URL, acc.JobID, 30*time.Second)
	if st.State != StateDone || len(st.Results) != 3 {
		t.Fatalf("final = %+v", st)
	}
	for i, r := range st.Results {
		if !r.Valid || r.Label != "STCP" {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
	// Two unique specs -> exactly two probes; the duplicate is fanned out.
	if got := s.metrics.identifies.Load(); got != 2 {
		t.Fatalf("identifications executed = %d, want 2", got)
	}
	if !st.Results[2].Cached || st.Results[0].Cached {
		t.Fatalf("dedup flags: first %v, duplicate %v", st.Results[0].Cached, st.Results[2].Cached)
	}
	if st.CacheHits != 1 {
		t.Fatalf("job cache hits = %d, want 1 (the intra-batch duplicate)", st.CacheHits)
	}
	if s.metrics.cacheHits.Load() != 1 || s.metrics.cacheMisses.Load() != 2 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/2",
			s.metrics.cacheHits.Load(), s.metrics.cacheMisses.Load())
	}
}

func TestOversizedBodyRejectedWith413(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "RENO", Confidence: 1})
	// A syntactically valid body whose one string token exceeds the cap,
	// so the decoder is still reading when the limit trips.
	big := append([]byte(`{"model":"`), bytes.Repeat([]byte("x"), maxBodyBytes+1024)...)
	big = append(big, '"', '}')
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
}

func TestReloadReportsPartialFailure(t *testing.T) {
	dir := t.TempDir()
	good := saveFakeModel(t, dir, "good.json", "G", 0.9)
	bad := saveFakeModel(t, dir, "bad.json", "B", 0.9)
	reg := NewRegistry()
	if _, err := reg.Load("good", good); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("bad", bad); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	if err := os.WriteFile(bad, []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/models/reload", nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("partial reload = %d (%s), want 500", resp.StatusCode, data)
	}
	var rel struct {
		Reloaded []ModelInfo `json:"reloaded"`
		Errors   []string    `json:"errors"`
	}
	if err := json.Unmarshal(data, &rel); err != nil {
		t.Fatal(err)
	}
	// The good model's swap must be reported, not hidden by bad's error.
	if len(rel.Reloaded) != 1 || rel.Reloaded[0].Name != "good" || rel.Reloaded[0].Generation != 2 {
		t.Fatalf("reloaded = %+v", rel.Reloaded)
	}
	if len(rel.Errors) == 0 {
		t.Fatalf("errors missing from partial-failure response: %s", data)
	}
	if s.metrics.modelsReloaded.Load() != 1 {
		t.Fatalf("models_reloaded = %d, want 1", s.metrics.modelsReloaded.Load())
	}
	// The corrupt model keeps serving its old weights.
	m, err := reg.Get("bad")
	if err != nil || m.Generation != 1 {
		t.Fatalf("bad model after failed reload: %+v, %v", m, err)
	}
}

func TestIdentifyHonorsCallerContext(t *testing.T) {
	gate := make(chan struct{})
	model := &fakeClassifier{Label: "RENO", Confidence: 1, gate: gate, started: make(chan struct{}, 4)}
	s, _ := newTestService(t, Config{Parallelism: 1}, model)
	releaseGate := sync.OnceFunc(func() { close(gate) })
	t.Cleanup(releaseGate)

	// Occupy the single probe slot.
	go s.identify(context.Background(), "", JobSpec{Server: ServerSpec{Algorithm: "RENO"}, Seed: 1})
	<-model.started

	// A second, different spec cannot get the slot; its context expiring
	// must release it with an error instead of waiting forever.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := s.identify(ctx, "", JobSpec{Server: ServerSpec{Algorithm: "RENO"}, Seed: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("identify err = %v, want DeadlineExceeded", err)
	}
	// An aborted leader must not poison the key: once capacity frees up,
	// the same spec identifies normally.
	releaseGate()
	resp, err := s.identify(context.Background(), "", JobSpec{Server: ServerSpec{Algorithm: "RENO"}, Seed: 2})
	if err != nil || resp.Label != "RENO" {
		t.Fatalf("retry after aborted leader = %+v, %v", resp, err)
	}
}
