package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// fetchMetrics GETs /metrics with the given query string and Accept header
// and returns the response content type and body.
func fetchMetrics(t *testing.T, base, query, accept string) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/metrics"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Header.Get("Content-Type"), string(body)
}

// TestMetricsPrometheusExposition drives a deterministic request sequence
// and checks the negotiated Prometheus rendering sample for sample: the
// content type, the counter values, the outcome and label breakdowns, and
// the pipeline-stage histogram series (count == sum of +Inf bucket). The
// JSON default must survive untouched for existing scrapers.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "VEGAS", Confidence: 0.7})

	// Two misses + one cache hit, same sequence as TestHealthzAndMetrics.
	postJSON(t, ts.URL+"/v1/identify", identifyBody("VEGAS", 1))
	postJSON(t, ts.URL+"/v1/identify", identifyBody("VEGAS", 2))
	postJSON(t, ts.URL+"/v1/identify", identifyBody("VEGAS", 1))

	ct, prom := fetchMetrics(t, ts.URL, "?format=prometheus", "")
	if ct != telemetry.PromContentType {
		t.Fatalf("content type %q, want %q", ct, telemetry.PromContentType)
	}
	for _, want := range []string{
		"# TYPE caai_requests_total counter",
		"caai_identifications_total 2",
		"caai_cache_hits_total 1",
		"caai_cache_misses_total 2",
		`caai_labels_total{label="VEGAS"} 2`,
		`caai_outcomes_total{outcome="labeled"} 2`,
		`caai_outcomes_total{outcome="unsure"} 0`,
		"# TYPE caai_stage_duration_seconds histogram",
		`caai_stage_duration_seconds_count{stage="gather"} 2`,
		`caai_stage_duration_seconds_bucket{stage="gather",le="+Inf"} 2`,
		`caai_request_duration_seconds_count{endpoint="POST /v1/identify"} 3`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	// Every census family is present even before any census ran, so
	// dashboards can predeclare queries against a fresh server.
	for _, want := range []string{
		"# TYPE caai_census_jobs_total counter",
		"caai_census_probes_total 0",
		"caai_census_retries_total 0",
		"caai_census_backoff_seconds_total 0",
		"caai_census_targets_abandoned_total 0",
		"caai_sync_rejected_total 0",
		`caai_census_attempts_bucket{le="+Inf"} 0`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	// Flight-recorder and Go-runtime families are present from the first
	// scrape (the trace counters have seen the requests above; the runtime
	// gauges are read live). Values are asserted only where deterministic.
	for _, want := range []string{
		"# TYPE caai_trace_finished_total counter",
		"# TYPE caai_trace_retained_total counter",
		"# TYPE caai_trace_dropped_total counter",
		"caai_trace_lost_total 0",
		"# TYPE caai_trace_spans_total counter",
		"# TYPE caai_trace_stored gauge",
		"# TYPE caai_runtime_goroutines gauge",
		"# TYPE caai_runtime_heap_bytes gauge",
		"# TYPE caai_runtime_gc_cycles_total counter",
		"# TYPE caai_runtime_gc_pause_p99_seconds gauge",
		"# TYPE caai_runtime_sched_latency_p99_seconds gauge",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	// The three identify requests all finished; sampling may keep or drop
	// them, but the accounting must have seen them (the 3 identify posts
	// plus this /metrics scrape race's own in-flight request).
	if !strings.Contains(prom, "caai_trace_finished_total 3") {
		t.Errorf("trace finished counter missing the three identify requests:\n%s",
			grepLines(prom, "caai_trace_finished_total"))
	}

	// Accept negotiation selects Prometheus too; plain GET stays JSON.
	if ct, _ := fetchMetrics(t, ts.URL, "", "text/plain; version=0.0.4"); ct != telemetry.PromContentType {
		t.Errorf("Accept: text/plain negotiated content type %q", ct)
	}
	if ct, body := fetchMetrics(t, ts.URL, "", ""); !strings.Contains(ct, "application/json") || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("default GET /metrics = %q (%q...), want the JSON snapshot", ct, body[:min(len(body), 40)])
	}
}

// grepLines returns the exposition lines containing substr, for focused
// failure messages.
func grepLines(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestMetricsOutcomeAccounting checks the satellite contract that every
// identification lands in exactly one outcome bucket and the buckets sum
// to identifications_total: a confident label, an under-threshold UNSURE
// verdict (low-confidence model), and an invalid gathering (server whose
// minimum MSS exceeds the whole probe ladder).
func TestMetricsOutcomeAccounting(t *testing.T) {
	registerFakeCodec()
	reg := NewRegistry()
	reg.Add("default", &fakeClassifier{Label: "RENO", Confidence: 0.9})
	reg.Add("shaky", &fakeClassifier{Label: "RENO", Confidence: core.UnsureThreshold / 2})
	s := New(reg, Config{})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})

	postJSON(t, srv.URL+"/v1/identify", identifyBody("RENO", 1))
	shaky := identifyBody("RENO", 2)
	shaky["model"] = "shaky"
	postJSON(t, srv.URL+"/v1/identify", shaky)
	invalid := identifyBody("RENO", 3)
	invalid["server"] = map[string]any{"algorithm": "RENO", "min_mss": 9000}
	postJSON(t, srv.URL+"/v1/identify", invalid)

	var m MetricsSnapshot
	getJSON(t, srv.URL+"/metrics", &m)
	if m.Outcomes.Labeled != 1 || m.Outcomes.Unsure != 1 || m.Outcomes.Invalid != 1 || m.Outcomes.Special != 0 {
		t.Fatalf("outcomes = %+v, want labeled/unsure/invalid = 1/1/1", m.Outcomes)
	}
	sum := m.Outcomes.Labeled + m.Outcomes.Unsure + m.Outcomes.Special + m.Outcomes.Invalid
	if sum != m.Identifies {
		t.Fatalf("outcome sum %d != identifications_total %d", sum, m.Identifies)
	}
	if m.Labels[core.LabelUnsure] != 1 {
		t.Fatalf("labels = %v, want %s counted once", m.Labels, core.LabelUnsure)
	}
}

// TestQueueAndWorkerGauges runs one async batch to completion and checks
// the new gauges: the queue's high-water mark saw the enqueued job, the
// retention gauge tracks the finished job, and no worker is busy at rest.
func TestQueueAndWorkerGauges(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "CUBIC2", Confidence: 0.8})

	resp, body := postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"jobs": []map[string]any{
			{"server": map[string]any{"algorithm": "CUBIC2"}, "seed": 1},
			{"server": map[string]any{"algorithm": "CUBIC2"}, "seed": 2},
		},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+acc.JobID, &st)
		if st.State == StateDone {
			break
		}
		if st.State == StateFailed || st.State == StateCancelled {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("batch job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var m MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if m.QueueHighWater < 1 {
		t.Errorf("queue_high_water = %d, want >= 1", m.QueueHighWater)
	}
	if m.FinishedRetained != 1 {
		t.Errorf("finished_jobs_retained = %d, want 1", m.FinishedRetained)
	}
	if m.WorkersBusy != 0 {
		t.Errorf("workers_busy = %d at rest", m.WorkersBusy)
	}
	if st, ok := m.Stages["queue_wait"]; !ok || st.Count < 1 {
		t.Errorf("stages = %v, want a queue_wait entry", m.Stages)
	}
}
