package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/identify       synchronous single identification
//	POST /v1/batch          submit an async batch; 202 + job ID
//	POST /v1/pcap           upload a packet capture; async per-flow labels
//	POST /v1/pcap/stream    stream a live capture; NDJSON per-flow labels
//	                        as flows close (no size cap; backpressured)
//	POST /v1/census         launch a sharded census; 202 + job ID
//	GET  /v1/jobs/{id}      poll batch status and results
//	DELETE /v1/jobs/{id}    cancel a queued or running batch
//	GET  /v1/models         list registered models
//	POST /v1/models/reload  hot-swap file-backed models from disk
//	GET  /v1/traces         retained traces (filter by outcome/route/
//	                        min_duration_ms, newest first)
//	GET  /v1/traces/{id}    one trace's full span tree (id = the
//	                        request's X-Request-ID)
//	GET  /healthz           liveness + model inventory
//	GET  /metrics           service counters (JSON; Prometheus text with
//	                        ?format=prometheus or Accept: text/plain)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/identify", s.handleIdentify)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/pcap", s.handlePcap)
	mux.HandleFunc("POST /v1/pcap/stream", s.handlePcapStream)
	// PUT is what `curl -T` (and most streaming-upload clients) send;
	// the endpoint is upload-shaped either way.
	mux.HandleFunc("PUT /v1/pcap/stream", s.handlePcapStream)
	mux.HandleFunc("POST /v1/census", s.handleCensus)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/models/reload", s.handleReload)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// withTrace must wrap outermost: it serves the mux a request copy
	// (context attach), and the mux stamps the matched pattern on that
	// copy -- countRequests must be on the copy's side to read it.
	return s.withTrace(s.countRequests(mux))
}

// countRequests feeds the requests_total counter and the per-endpoint
// latency histograms. The route pattern is read back from the request
// after the mux matched it (the mux stamps r.Pattern on the same request
// value), so every histogram is keyed by route shape, not raw path;
// unmatched requests pool under "other".
func (s *Service) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Add(1)
		start := time.Now()
		next.ServeHTTP(w, r)
		pattern := r.Pattern
		if pattern == "" {
			pattern = "other"
		}
		s.metrics.observeEndpoint(pattern, time.Since(start))
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds request bodies so an oversized POST cannot buffer
// unbounded JSON into memory before MaxBatchJobs is ever consulted (a
// MaxBatchJobs-sized batch of fully specified jobs fits comfortably).
const maxBodyBytes = 16 << 20

// errBodyTooLarge marks a rejected oversized body (mapped to 413).
var errBodyTooLarge = errors.New("request body exceeds the 16 MiB limit")

// decodeBody strictly decodes a JSON request body into v (unknown fields
// are rejected so typos in specs fail loudly instead of probing defaults),
// reading at most maxBodyBytes.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return errBodyTooLarge
		}
		return fmt.Errorf("decoding request body: %v", err)
	}
	return nil
}

// writeBodyError answers a decodeBody failure with the right status.
func writeBodyError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, errBodyTooLarge) {
		status = http.StatusRequestEntityTooLarge
	}
	writeError(w, status, "%v", err)
}

// writeQueueFull answers transient back-pressure (errQueueFull) with 429
// and a Retry-After hint. Distinct from the terminal 503 of shutdown:
// a 429 tells clients the same request will succeed once the queue (or
// the sync backlog) drains.
func writeQueueFull(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, "%v", err)
}

func (s *Service) handleIdentify(w http.ResponseWriter, r *http.Request) {
	var req IdentifyRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	resp, err := s.identify(r.Context(), req.Model, req.JobSpec)
	if err != nil {
		setOutcome(r.Context(), telemetry.OutcomeError)
		if errors.Is(err, errQueueFull) {
			// The sync backlog is saturated: shed load now instead of
			// parking another goroutine on the probe semaphore.
			writeQueueFull(w, err)
			return
		}
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrNoModel):
			status = http.StatusNotFound
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The client went away while we waited for a probe slot; the
			// status is moot but 503 is the honest one.
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	// Classify the identification for tail sampling: an UNSURE or
	// invalid outcome is a 200 the flight recorder must always keep.
	switch {
	case !resp.Valid:
		setOutcome(r.Context(), telemetry.OutcomeInvalid)
	case resp.Special != "":
		setOutcome(r.Context(), telemetry.OutcomeSpecial)
	case resp.Label == core.LabelUnsure:
		setOutcome(r.Context(), telemetry.OutcomeUnsure)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	j, err := s.submit(r.Context(), req)
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			writeQueueFull(w, err)
		case errors.Is(err, errShuttingDown):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, ErrNoModel):
			writeError(w, http.StatusNotFound, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, BatchAccepted{
		JobID:  j.id,
		Status: "/v1/jobs/" + j.id,
		Total:  len(j.specs),
	})
}

func (s *Service) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Service) handleModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.modelInfos()})
}

// reloadRequest optionally narrows POST /v1/models/reload to one model.
// Models always reload from the file they were loaded from; accepting a
// client-supplied path would let any API client probe or register
// arbitrary server-readable files.
type reloadRequest struct {
	Name string `json:"name,omitempty"`
}

func (s *Service) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if r.ContentLength != 0 {
		if err := decodeBody(w, r, &req); err != nil {
			writeBodyError(w, err)
			return
		}
	}
	var reloaded []*Model
	var reloadErr error
	if req.Name != "" {
		m, err := s.registry.ReloadOne(req.Name)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrNoModel) {
				status = http.StatusNotFound
			}
			writeError(w, status, "%v", err)
			return
		}
		reloaded = []*Model{m}
	} else {
		// A failed file keeps its old entry serving while the others still
		// swap, so report what actually happened: the applied swaps AND
		// the per-model errors, never an error-only response that hides
		// generation bumps.
		reloaded, reloadErr = s.registry.Reload()
	}
	s.metrics.modelsReloaded.Add(int64(len(reloaded)))
	infos := make([]ModelInfo, 0, len(reloaded))
	for _, m := range reloaded {
		infos = append(infos, newModelInfo(m))
	}
	body := map[string]any{"reloaded": infos}
	status := http.StatusOK
	if reloadErr != nil {
		body["errors"] = strings.Split(reloadErr.Error(), "\n")
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, body)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.registry.Len() == 0 {
		status = "no models loaded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status": status,
		"models": s.registry.Names(),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r.URL.Query().Get("format"), r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", telemetry.PromContentType)
		w.WriteHeader(http.StatusOK)
		_ = s.writePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot())
}
