package service

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/census/shard"
	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/websim"
)

// ServerSpec is the wire description of a simulated Web server to probe.
// Only Algorithm is required; everything else overrides the cooperative
// testbed defaults (see websim.Testbed), which lets clients reproduce the
// census's awkward servers -- pipelining limits, tiny pages, F-RTO,
// ssthresh caching, proxies -- over the API.
type ServerSpec struct {
	// Name labels the server in results; defaults to "testbed-<algorithm>".
	Name string `json:"name,omitempty"`
	// Algorithm is the congestion avoidance algorithm (a cc registry key).
	Algorithm string `json:"algorithm"`
	// ProxyAlgorithm models a TCP proxy splitting the connection.
	ProxyAlgorithm string `json:"proxy_algorithm,omitempty"`
	// MinMSS is the smallest MSS the server accepts (default 100).
	MinMSS int `json:"min_mss,omitempty"`
	// MaxRequests caps pipelined HTTP requests (default unlimited).
	MaxRequests int `json:"max_requests,omitempty"`
	// DefaultPageBytes / LongestPageBytes are the page sizes (default 64 MiB).
	DefaultPageBytes int64 `json:"default_page_bytes,omitempty"`
	LongestPageBytes int64 `json:"longest_page_bytes,omitempty"`
	// TCP stack quirks (all default off).
	FRTO            bool `json:"frto,omitempty"`
	SsthreshCaching bool `json:"ssthresh_caching,omitempty"`
	IgnoreRTO       bool `json:"ignore_rto,omitempty"`
}

// build materializes the spec into a websim.Server, starting from the
// testbed defaults.
func (s ServerSpec) build() (*websim.Server, error) {
	if s.Algorithm == "" {
		return nil, fmt.Errorf("server.algorithm is required")
	}
	if _, err := cc.New(s.Algorithm); err != nil {
		return nil, fmt.Errorf("server.algorithm: %v", err)
	}
	if s.ProxyAlgorithm != "" {
		if _, err := cc.New(s.ProxyAlgorithm); err != nil {
			return nil, fmt.Errorf("server.proxy_algorithm: %v", err)
		}
	}
	srv := websim.Testbed(s.Algorithm)
	if s.Name != "" {
		srv.Name = s.Name
	}
	srv.ProxyAlgorithm = s.ProxyAlgorithm
	if s.MinMSS > 0 {
		srv.MinMSS = s.MinMSS
	}
	if s.MaxRequests > 0 {
		srv.MaxRequests = s.MaxRequests
	}
	if s.DefaultPageBytes > 0 {
		srv.DefaultPageBytes = s.DefaultPageBytes
	}
	if s.LongestPageBytes > 0 {
		srv.LongestPageBytes = s.LongestPageBytes
	}
	srv.FRTO = s.FRTO
	srv.SsthreshCaching = s.SsthreshCaching
	srv.IgnoreRTO = s.IgnoreRTO
	return srv, nil
}

// ConditionSpec is the wire description of the emulated network path,
// covering the paper's three dimensions plus the extended impairments the
// evaluation matrix sweeps (reordering, duplication, Gilbert–Elliott
// burst loss).
type ConditionSpec struct {
	// MeanRTTMs is the mean path RTT in milliseconds (default 50).
	MeanRTTMs float64 `json:"mean_rtt_ms,omitempty"`
	// RTTStdDevMs is the RTT standard deviation in milliseconds.
	RTTStdDevMs float64 `json:"rtt_stddev_ms,omitempty"`
	// LossRate is the per-packet loss probability in [0, 1].
	LossRate float64 `json:"loss_rate,omitempty"`
	// ReorderRate is the probability a data packet is overtaken by its
	// successor, in [0, 1].
	ReorderRate float64 `json:"reorder_rate,omitempty"`
	// DupRate is the probability a data packet arrives twice, in [0, 1].
	DupRate float64 `json:"dup_rate,omitempty"`
	// Burst loss (Gilbert–Elliott): active when BurstLossRate > 0, then
	// replacing LossRate. BurstPGoodBad/BurstPBadGood are the per-packet
	// state transition probabilities; BurstGoodLossRate is the residual
	// loss in the good state.
	BurstLossRate     float64 `json:"burst_loss_rate,omitempty"`
	BurstPGoodBad     float64 `json:"burst_p_good_bad,omitempty"`
	BurstPBadGood     float64 `json:"burst_p_bad_good,omitempty"`
	BurstGoodLossRate float64 `json:"burst_good_loss_rate,omitempty"`
}

func (c ConditionSpec) build() (netem.Condition, error) {
	if c.MeanRTTMs < 0 || c.RTTStdDevMs < 0 {
		return netem.Condition{}, fmt.Errorf("condition RTTs must be non-negative")
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"loss_rate", c.LossRate},
		{"reorder_rate", c.ReorderRate},
		{"dup_rate", c.DupRate},
		{"burst_loss_rate", c.BurstLossRate},
		{"burst_p_good_bad", c.BurstPGoodBad},
		{"burst_p_bad_good", c.BurstPBadGood},
		{"burst_good_loss_rate", c.BurstGoodLossRate},
	} {
		if p.v < 0 || p.v > 1 {
			return netem.Condition{}, fmt.Errorf("condition.%s must be in [0, 1]", p.name)
		}
	}
	if c.BurstLossRate == 0 && (c.BurstPGoodBad != 0 || c.BurstPBadGood != 0 || c.BurstGoodLossRate != 0) {
		return netem.Condition{}, fmt.Errorf("condition burst_* knobs need burst_loss_rate > 0")
	}
	if c.BurstLossRate > 0 && c.BurstPGoodBad == 0 && c.BurstGoodLossRate == 0 {
		// The chain would never leave the lossless good state: the caller
		// asked for burst loss and would silently get a clean path.
		return netem.Condition{}, fmt.Errorf("condition.burst_loss_rate needs burst_p_good_bad > 0 (or burst_good_loss_rate > 0)")
	}
	mean := c.MeanRTTMs
	if mean == 0 {
		mean = 50
	}
	return netem.Condition{
		MeanRTT:     time.Duration(mean * float64(time.Millisecond)),
		RTTStdDev:   time.Duration(c.RTTStdDevMs * float64(time.Millisecond)),
		LossRate:    c.LossRate,
		ReorderRate: c.ReorderRate,
		DupRate:     c.DupRate,
		GEPGoodBad:  c.BurstPGoodBad,
		GEPBadGood:  c.BurstPBadGood,
		GEGoodLoss:  c.BurstGoodLossRate,
		GEBadLoss:   c.BurstLossRate,
	}, nil
}

// JobSpec is one identification request: a server under a condition.
type JobSpec struct {
	Server    ServerSpec    `json:"server"`
	Condition ConditionSpec `json:"condition"`
	// Seed pins the job's randomness so results are reproducible (and
	// cacheable). 0 is normalized to 1: the service is deterministic by
	// default, vary Seed explicitly to resample.
	Seed int64 `json:"seed,omitempty"`
}

// normalize applies the spec defaults that participate in the cache
// fingerprint, so equivalent requests share a cache entry.
func (j JobSpec) normalize() JobSpec {
	if j.Seed == 0 {
		j.Seed = 1
	}
	if j.Condition.MeanRTTMs == 0 {
		j.Condition.MeanRTTMs = 50
	}
	if j.Server.Name == "" {
		j.Server.Name = "testbed-" + j.Server.Algorithm
	}
	return j
}

// fingerprint canonically encodes the normalized spec. Combined with the
// model version it is the result-cache key: identification is a pure
// function of (model, server, condition, seed).
func (j JobSpec) fingerprint() string {
	b, err := json.Marshal(j.normalize())
	if err != nil {
		// Marshalling a plain struct of scalars cannot fail.
		panic("service: fingerprinting job spec: " + err.Error())
	}
	return string(b)
}

// IdentifyRequest is the POST /v1/identify body.
type IdentifyRequest struct {
	// Model selects a registry model by name; empty uses the default.
	Model string `json:"model,omitempty"`
	JobSpec
}

// IdentifyResponse is the identification outcome on the wire.
type IdentifyResponse struct {
	// Model is the full version of the model that answered (name@generation).
	Model string `json:"model"`
	// Server echoes the probed server's name.
	Server string `json:"server"`
	// Label, Confidence, Special, Valid, Reason, Wmax and MSS mirror
	// core.Identification.
	Label      string  `json:"label,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	Special    string  `json:"special,omitempty"`
	Valid      bool    `json:"valid"`
	Reason     string  `json:"reason,omitempty"`
	Wmax       int     `json:"wmax,omitempty"`
	MSS        int     `json:"mss,omitempty"`
	// Features is the extracted feature vector (omitted for invalid and
	// special traces).
	Features []float64 `json:"features,omitempty"`
	// SimulatedMs is the simulated probing time in milliseconds (for
	// capture jobs: the captured flows' wall-clock span).
	SimulatedMs float64 `json:"simulated_ms"`
	// Cached reports whether the result came from the LRU cache.
	Cached bool `json:"cached"`
	// Flow carries per-flow metadata on POST /v1/pcap job results; absent
	// for probed identifications.
	Flow *FlowInfo `json:"flow,omitempty"`
	// Timings is the per-stage wall-clock breakdown of the pipeline run
	// that produced this result (absent when span recording is off). On a
	// cached response it describes the run that filled the cache, not this
	// request.
	Timings *StageTimingsMs `json:"timings,omitempty"`
	// Text is the human-readable rendering of the identification.
	Text string `json:"text"`
}

// StageTimingsMs is the wire form of a per-stage span breakdown, in
// milliseconds. Stage meanings follow internal/telemetry: queue_wait is
// time waiting for an execution slot, gather the probe (or capture
// decode) span, feature extraction, classify the model call (a block
// sample's share of its batched call), cache the service-side lookup.
type StageTimingsMs struct {
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	GatherMs    float64 `json:"gather_ms,omitempty"`
	FeatureMs   float64 `json:"feature_ms,omitempty"`
	ClassifyMs  float64 `json:"classify_ms,omitempty"`
	CacheMs     float64 `json:"cache_ms,omitempty"`
}

// stageTimingsMs renders a recorded span breakdown for the wire (nil when
// nothing was recorded, so untimed paths stay byte-identical).
func stageTimingsMs(t telemetry.StageTimings) *StageTimingsMs {
	if t.Zero() {
		return nil
	}
	ms := func(s telemetry.Stage) float64 { return float64(t[s]) / float64(time.Millisecond) }
	return &StageTimingsMs{
		QueueWaitMs: ms(telemetry.StageQueueWait),
		GatherMs:    ms(telemetry.StageGather),
		FeatureMs:   ms(telemetry.StageFeature),
		ClassifyMs:  ms(telemetry.StageClassify),
		CacheMs:     ms(telemetry.StageCache),
	}
}

// toResponse converts a pipeline identification to its wire form.
func toResponse(modelVersion, server string, id core.Identification) IdentifyResponse {
	resp := IdentifyResponse{
		Model:       modelVersion,
		Server:      server,
		Valid:       id.Valid,
		Wmax:        id.Wmax,
		MSS:         id.MSS,
		SimulatedMs: float64(id.Elapsed) / float64(time.Millisecond),
		Text:        id.String(),
	}
	switch {
	case !id.Valid:
		resp.Reason = string(id.Reason)
	case id.Special != trace.SpecialNone:
		resp.Special = id.Special.String()
	default:
		resp.Label = id.Label
		resp.Confidence = id.Confidence
		resp.Features = append([]float64(nil), id.Vector.Slice()...)
	}
	resp.Timings = stageTimingsMs(id.Timings)
	return resp
}

// BatchRequest is the POST /v1/batch body.
type BatchRequest struct {
	// Model selects a registry model by name; empty uses the default.
	Model string `json:"model,omitempty"`
	// Jobs are the identification jobs; at least one is required.
	Jobs []JobSpec `json:"jobs"`
}

// BatchAccepted is the POST /v1/batch response: poll Status for results.
type BatchAccepted struct {
	JobID  string `json:"job_id"`
	Status string `json:"status_url"`
	Total  int    `json:"total"`
}

// JobStatus is the GET /v1/jobs/{id} response.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// RequestID/TraceID echo the accepting request's correlation
	// identity: RequestID is the X-Request-ID that 202 carried, TraceID
	// the flight-recorder key for GET /v1/traces/{id}. Absent when the
	// job was submitted outside the HTTP surface.
	RequestID string             `json:"request_id,omitempty"`
	TraceID   string             `json:"trace_id,omitempty"`
	Total     int                `json:"total"`
	Completed int                `json:"completed"`
	CacheHits int                `json:"cache_hits"`
	Error     string             `json:"error,omitempty"`
	Results   []IdentifyResponse `json:"results,omitempty"`
	// Census carries a census job's progress and demographic table;
	// absent for batch and capture jobs.
	Census *CensusStatus `json:"census,omitempty"`
}

// CensusRequest is the POST /v1/census body: generate a synthetic server
// population and measure it through the fault-tolerant sharded runner
// (internal/census/shard), producing the paper's Table IV demographics.
// Checkpointing is not exposed over the API -- accepting a client-supplied
// directory would let any client write server-side paths (same rationale
// as the reload endpoint refusing client paths); use cmd/caai-census for
// resumable campaigns.
type CensusRequest struct {
	// Model selects a registry model by name; empty uses the default.
	Model string `json:"model,omitempty"`
	// Servers is the population size (required; capped at
	// MaxCensusServers so one request cannot pin a census the size of
	// the paper's full 63 124-server study without operator involvement).
	Servers int `json:"servers"`
	// Seed drives population generation and probing, following the
	// experiments package's derivation (population Seed+77, probing
	// Seed+99) so a service census reproduces cmd/caai-census's table
	// for the same seed and model. 0 is normalized to 2011.
	Seed int64 `json:"seed,omitempty"`
	// Workers is the shard count (0 = engine default parallelism).
	Workers int `json:"workers,omitempty"`
	// MaxAttempts and MaxDeferrals bound the retry taxonomy (0 = the
	// shard package defaults: 4 attempts, 8 deferrals).
	MaxAttempts  int `json:"max_attempts,omitempty"`
	MaxDeferrals int `json:"max_deferrals,omitempty"`
	// Fault optionally injects a deterministic fault plan, exercising
	// the retry/steal/abandon machinery end to end over the API.
	Fault *shard.FaultPlan `json:"fault,omitempty"`
}

// CensusStatus is the census slice of a JobStatus: the sharded runner's
// progress counters and the Table IV rendering over completed targets --
// partial while the job runs, final once it is done.
type CensusStatus struct {
	Progress shard.Progress `json:"progress"`
	TableIV  string         `json:"table_iv,omitempty"`
}

// errorResponse is the JSON error envelope every non-2xx response uses.
type errorResponse struct {
	Error string `json:"error"`
}
