package service

import (
	"sync"
	"testing"
)

// BenchmarkCountLabel measures the per-identification label tally under
// parallel load: "atomic" is the shipped sync.Map + atomic.Int64 path
// (lock-free once a label's counter exists), "mutex" re-creates the
// previous design (one mutex around a plain map) for comparison. On a
// multi-core box the mutex variant serializes every identification through
// one lock; the atomic variant scales with cores.
func BenchmarkCountLabel(b *testing.B) {
	resp := IdentifyResponse{Valid: true, Label: "CUBIC2"}

	b.Run("atomic", func(b *testing.B) {
		m := newMetrics()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				m.countLabel(resp)
			}
		})
	})

	b.Run("mutex", func(b *testing.B) {
		var mu sync.Mutex
		labels := map[string]int64{}
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				mu.Lock()
				labels[resp.Label]++
				mu.Unlock()
			}
		})
	})
}
