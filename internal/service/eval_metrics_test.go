package service

import (
	"net/http"
	"testing"

	"repro/internal/eval"
)

// TestMetricsExposesEvalSummary: /metrics carries no eval block until a
// summary is installed, then serves the latest one.
func TestMetricsExposesEvalSummary(t *testing.T) {
	s, ts := newTestService(t, Config{}, &fakeClassifier{Label: "RENO", Confidence: 1})

	var before MetricsSnapshot
	if resp := getJSON(t, ts.URL+"/metrics", &before); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if before.Eval != nil {
		t.Fatalf("metrics should have no eval block before SetEvalSummary: %+v", before.Eval)
	}

	s.SetEvalSummary(eval.Summary{
		Label:            "baseline",
		OverallAccuracy:  0.91,
		ScenarioAccuracy: map[string]float64{"clean": 0.99, "loss_5": 0.72},
		Cells:            252,
	})
	var after MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &after)
	if after.Eval == nil {
		t.Fatal("metrics missing eval block after SetEvalSummary")
	}
	if after.Eval.Label != "baseline" || after.Eval.OverallAccuracy != 0.91 {
		t.Fatalf("eval summary = %+v", after.Eval)
	}
	if after.Eval.ScenarioAccuracy["loss_5"] != 0.72 {
		t.Fatalf("scenario accuracy lost: %+v", after.Eval.ScenarioAccuracy)
	}

	// A newer summary replaces the old one.
	s.SetEvalSummary(eval.Summary{Label: "newer", OverallAccuracy: 0.93})
	getJSON(t, ts.URL+"/metrics", &after)
	if after.Eval.Label != "newer" {
		t.Fatalf("stale eval summary served: %+v", after.Eval)
	}
}

// TestConditionSpecExtendedKnobs covers the wire surface of the extended
// netem impairments: valid knobs probe, invalid ones answer 400.
func TestConditionSpecExtendedKnobs(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "RENO", Confidence: 1})

	ok := map[string]any{
		"server": map[string]any{"algorithm": "RENO"},
		"condition": map[string]any{
			"reorder_rate":     0.1,
			"dup_rate":         0.05,
			"burst_loss_rate":  0.3,
			"burst_p_good_bad": 0.05,
			"burst_p_bad_good": 0.4,
		},
		"seed": 3,
	}
	if resp, data := postJSON(t, ts.URL+"/v1/identify", ok); resp.StatusCode != http.StatusOK {
		t.Fatalf("impaired identify status %d: %s", resp.StatusCode, data)
	}

	for name, cond := range map[string]map[string]any{
		"reorder_rate out of range":      {"reorder_rate": 1.5},
		"dup_rate negative":              {"dup_rate": -0.1},
		"burst knobs without rate":       {"burst_p_good_bad": 0.1},
		"burst rate that can never drop": {"burst_loss_rate": 0.3},
		"burst_loss_rate over 1":         {"burst_loss_rate": 1.2},
		"burst_good_loss out of range":   {"burst_loss_rate": 0.2, "burst_good_loss_rate": 2.0},
	} {
		body := map[string]any{
			"server":    map[string]any{"algorithm": "RENO"},
			"condition": cond,
		}
		if resp, data := postJSON(t, ts.URL+"/v1/identify", body); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", name, resp.StatusCode, data)
		}
	}
}
