package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/telemetry"
)

// Job states reported by GET /v1/jobs/{id}.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// job is one accepted async unit of work -- a probe batch (specs), a
// pcap capture's flow pairs (pcap), or a sharded census (census) -- with
// its mutable progress and a cancel handle. The executor writes results
// as probes or classifications complete; status polls read a consistent
// snapshot under mu.
type job struct {
	id    string
	model string
	specs []JobSpec
	// pcap carries a capture job's reassembled flow pairs; nil for probe
	// batches. The worker dispatches on it.
	pcap []flow.FlowIdentification
	// census carries a census job's request and live coordinator; nil
	// otherwise. Census jobs report progress through the coordinator
	// instead of per-slot results.
	census *censusState
	// total is the number of result slots (len(specs) or len(pcap)), or
	// the population size for a census job.
	total int
	// enqueuedAt stamps queue admission; the worker observes the
	// dequeue-to-start delta as the job-level queue_wait span.
	enqueuedAt time.Time
	// reqID/trace carry the accepting request's correlation identity:
	// the job's spans are recorded under trace, the job payload echoes
	// reqID, and job completion re-finishes the trace so the retained
	// span tree covers the async work, not just the 202 acceptance.
	reqID string
	trace telemetry.TraceID
	// gatherSpan is a pcap job's decode+reassembly wall clock, charged to
	// its pairs as StageGather when classification records spans.
	gatherSpan time.Duration

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	completed int
	cacheHits int
	unsure    int // UNSURE/invalid results, for the trace's outcome class
	errMsg    string
	results   []IdentifyResponse
}

// complete records the result for spec index i.
func (j *job) complete(i int, resp IdentifyResponse, fromCache bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results[i] = resp
	j.completed++
	if fromCache {
		j.cacheHits++
	}
	if !resp.Valid || resp.Label == core.LabelUnsure {
		j.unsure++
	}
}

// requestCancel cancels the job's context and, when the job has not
// started yet, flips it to cancelled immediately so DELETE responses and
// status polls reflect the cancellation without waiting for a worker to
// pop it (the worker still retires it when it drains to it). A running
// job stays "running" until its in-flight probes wind down.
func (j *job) requestCancel() {
	j.cancel()
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCancelled
		j.errMsg = "cancelled before start"
	}
	j.mu.Unlock()
}

// tryStart atomically transitions queued -> running. It refuses when the
// job already left the queued state (a racing requestCancel), so a
// client-visible terminal "cancelled" can never regress to "running".
func (j *job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	return true
}

func (j *job) fail(msg string) {
	j.mu.Lock()
	j.state = StateFailed
	if j.ctx.Err() != nil {
		j.state = StateCancelled
	}
	j.errMsg = msg
	j.mu.Unlock()
}

func (j *job) finish() {
	j.mu.Lock()
	j.state = StateDone
	j.mu.Unlock()
}

// status snapshots the job for GET /v1/jobs/{id}. Results are included
// only once the job is done, so pollers see either progress counters or
// the complete result set, never a torn mixture.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		RequestID: j.reqID,
		TraceID:   j.trace.String(),
		Total:     j.total,
		Completed: j.completed,
		CacheHits: j.cacheHits,
		Error:     j.errMsg,
	}
	if j.trace == 0 {
		st.TraceID = ""
	}
	if j.state == StateDone {
		st.Results = append([]IdentifyResponse(nil), j.results...)
	}
	if j.census != nil {
		// Census progress lives in the coordinator, not the per-slot
		// counters; the augment also attaches the (partial) Table IV.
		j.census.augment(&st)
	}
	return st
}

// submit validates req, enqueues it, and returns the accepted job. A full
// queue returns errQueueFull so the handler can answer 503. ctx carries
// the accepting request's trace identity into the job.
func (s *Service) submit(ctx context.Context, req BatchRequest) (*job, error) {
	if err := s.validateBatch(req); err != nil {
		s.metrics.batchRejected.Add(1)
		return nil, err
	}
	return s.enqueue(ctx, &job{
		model: req.Model,
		specs: req.Jobs,
		total: len(req.Jobs),
	})
}

// enqueue registers a freshly built job (specs or pcap payload set) and
// pushes it into the bounded queue. It finishes initializing the job:
// context, state, ID, the result slots, and the correlation identity
// from the accepting request's ctx (the job's own lifetime context stays
// rooted in the service, not the soon-to-close HTTP request).
func (s *Service) enqueue(ctx context.Context, j *job) (*job, error) {
	j.reqID = requestIDFrom(ctx)
	j.trace = traceIDFrom(ctx)
	j.ctx, j.cancel = context.WithCancel(s.ctx)
	j.state = StateQueued
	if j.census == nil {
		// Census jobs keep their outcomes in the coordinator; allocating
		// a population-sized response slice here would only pin memory.
		j.results = make([]IdentifyResponse, j.total)
	}
	s.jobMu.Lock()
	s.nextJob++
	j.id = fmt.Sprintf("job-%d", s.nextJob)
	s.jobs[j.id] = j
	s.jobMu.Unlock()

	reject := func(err error) (*job, error) {
		s.jobMu.Lock()
		delete(s.jobs, j.id)
		s.jobMu.Unlock()
		j.cancel()
		s.metrics.batchRejected.Add(1)
		return nil, err
	}
	// The enqueue happens under closeMu's read lock: once Close has taken
	// the write lock and flipped closed, no job can slip into the buffered
	// queue after the workers drained it, which would strand it in
	// "queued" forever.
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return reject(errShuttingDown)
	}
	j.enqueuedAt = time.Now()
	depth := int64(len(s.queue)) + 1 // this job included
	select {
	case s.queue <- j:
		s.metrics.batchAccepted.Add(1)
		// depth was sampled before the send: it counts this job exactly
		// once even when a worker drains it before we could observe it --
		// the job was queued, however briefly.
		s.metrics.queueHighWater.SetMax(depth)
		return j, nil
	default:
		return reject(errQueueFull)
	}
}

// errQueueFull and errShuttingDown mark rejected submissions. A full
// queue is transient back-pressure, answered 429 with a Retry-After so
// well-behaved clients pace themselves; shutdown is terminal and answers
// 503.
var (
	errQueueFull    = fmt.Errorf("service: job queue is full, retry later")
	errShuttingDown = fmt.Errorf("service: shutting down, not accepting jobs")
)

// lookupJob resolves a job ID for status polls and cancellation.
func (s *Service) lookupJob(id string) (*job, bool) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// finishJobTrace re-finishes the job's trace at job completion, so the
// tail sampler re-evaluates the whole async lifetime: a batch whose
// results came back UNSURE (or that failed) is retained even though its
// 202 acceptance looked perfectly normal. The retained store replaces by
// ID, so this fuller scan wins over the acceptance-time one.
func (s *Service) finishJobTrace(j *job) {
	if j.trace == 0 {
		return
	}
	j.mu.Lock()
	state, unsure := j.state, j.unsure
	j.mu.Unlock()
	outcome := telemetry.OutcomeOK
	switch {
	case state == StateFailed || state == StateCancelled:
		outcome = telemetry.OutcomeError
	case unsure > 0:
		outcome = telemetry.OutcomeUnsure
	}
	route := "job:batch"
	switch {
	case j.census != nil:
		route = "job:census"
	case j.pcap != nil:
		route = "job:pcap"
	}
	start := j.enqueuedAt
	if start.IsZero() {
		start = time.Now()
	}
	s.flight.Finish(telemetry.TraceDone{
		ID:        j.trace,
		RequestID: j.reqID,
		Route:     route,
		Outcome:   outcome,
		Start:     start,
		Duration:  time.Since(start),
	})
}

// retire records that j reached a terminal state and enforces the
// finished-job retention cap: the oldest finished jobs are dropped from
// the store (their IDs then answer 404) so a resident server's memory
// stays bounded under steady batch traffic.
func (s *Service) retire(j *job) {
	s.finishJobTrace(j)
	// Release the job's context registration on the service root context;
	// without this every completed job would leak a cancelCtx node for
	// the life of the process.
	j.cancel()
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.JobRetention {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.metrics.finishedRetained.Set(int64(len(s.finished)))
}

// worker drains the batch queue until the service closes: the bounded
// consumer side of POST /v1/batch.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			s.drainQueue()
			return
		case j := <-s.queue:
			if j.ctx.Err() != nil || !j.tryStart() {
				j.fail("cancelled before start")
				s.metrics.jobsFailed.Add(1)
				s.retire(j)
				continue
			}
			wait := time.Since(j.enqueuedAt)
			s.metrics.pipeline.Observe(telemetry.StageQueueWait, wait)
			s.flight.Span(j.trace, telemetry.StageQueueWait, j.enqueuedAt, wait, 0)
			s.metrics.workersBusy.Add(1)
			switch {
			case j.census != nil:
				s.runCensus(j)
			case j.pcap != nil:
				s.runPcap(j)
			default:
				s.runBatch(j)
			}
			s.metrics.workersBusy.Add(-1)
			s.retire(j)
		}
	}
}

// drainQueue marks still-queued jobs failed during shutdown so pollers
// are not left waiting on jobs that will never run.
func (s *Service) drainQueue() {
	for {
		select {
		case j := <-s.queue:
			j.fail("service shut down before the job ran")
			s.metrics.jobsFailed.Add(1)
			s.retire(j)
		default:
			return
		}
	}
}
