package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/pcapgen"
	"repro/internal/probe"
)

// uploadCapture POSTs raw capture bytes to /v1/pcap.
func uploadCapture(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/pcap", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestPcapEndToEnd uploads a multi-flow synthetic capture, polls the job,
// and receives per-flow labels -- the acceptance path of the capture
// subsystem over HTTP.
func TestPcapEndToEnd(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "CUBIC2", Confidence: 0.93})

	// Two servers, two connections each (environments A and B).
	var capture bytes.Buffer
	if _, err := pcapgen.Generate(&capture, []pcapgen.ServerSpec{
		{Algorithm: "CUBIC2", Seed: 31},
		{Algorithm: "RENO", Seed: 32},
	}, pcapgen.Options{Probe: probe.Config{WmaxLadder: []int{64}}}); err != nil {
		t.Fatal(err)
	}

	resp, data := uploadCapture(t, ts.URL, capture.Bytes())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var acc PcapAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Total != 2 {
		t.Fatalf("accepted %d pairs, want 2: %s", acc.Total, data)
	}
	if acc.Stats.Flows != 4 || acc.Stats.TCPSegments == 0 {
		t.Fatalf("capture stats: %+v", acc.Stats)
	}

	st := pollJob(t, ts.URL, acc.JobID, 10*time.Second)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	if len(st.Results) != 2 || st.Completed != 2 {
		t.Fatalf("results: %+v", st)
	}
	servers := map[string]bool{}
	for _, r := range st.Results {
		if !r.Valid || r.Label != "CUBIC2" {
			t.Fatalf("flow result not classified: %+v", r)
		}
		if r.Flow == nil || r.Flow.ClientA == "" || r.Flow.ClientB == "" || r.Flow.Packets == 0 {
			t.Fatalf("flow metadata missing: %+v", r.Flow)
		}
		if r.Flow.RTTMs != 1000 {
			t.Fatalf("flow rtt %v, want the 1s environment-A RTT", r.Flow.RTTMs)
		}
		servers[r.Server] = true
	}
	if len(servers) != 2 {
		t.Fatalf("results cover %d servers, want 2", len(servers))
	}

	// Ingest counters surfaced on /metrics.
	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Pcap.Uploads != 1 || snap.Pcap.FlowsSeen != 4 || snap.Pcap.Classifiable == 0 || snap.Pcap.DecodeErrors != 0 {
		t.Fatalf("pcap metrics: %+v", snap.Pcap)
	}
	if snap.Labels["CUBIC2"] != 2 {
		t.Fatalf("label counters: %+v", snap.Labels)
	}
}

func TestPcapRejectsGarbage(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "X", Confidence: 1})

	resp, data := uploadCapture(t, ts.URL, []byte("this is not a capture, not even close"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload: status %d: %s", resp.StatusCode, data)
	}
	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Pcap.DecodeErrors != 1 {
		t.Fatalf("decode errors: %+v", snap.Pcap)
	}
}

func TestPcapRejectsUnknownModel(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "X", Confidence: 1})
	resp, err := http.Post(ts.URL+"/v1/pcap?model=nope", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d", resp.StatusCode)
	}
}

func TestPcapEmptyCapture(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "X", Confidence: 1})
	// A structurally valid pcap header with zero records decodes cleanly
	// but holds no flows.
	hdr := []byte{0xd4, 0xc3, 0xb2, 0xa1, 2, 0, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0, 0, 1, 0, 0, 0}
	resp, data := uploadCapture(t, ts.URL, hdr)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty capture: status %d: %s", resp.StatusCode, data)
	}
}
