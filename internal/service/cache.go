package service

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU of identification results keyed by
// (model version, job spec fingerprint). Identification is deterministic
// for a fixed key, so entries never go stale; hot-swapping a model bumps
// its generation, which changes every key and naturally retires the old
// model's entries as new results push them out.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val IdentifyResponse
}

// newResultCache returns an LRU holding at most max entries; max <= 0
// disables caching (every Get misses, Put is a no-op).
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached response for key, marking it most recently used.
func (c *resultCache) Get(key string) (IdentifyResponse, bool) {
	if c.max <= 0 {
		return IdentifyResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return IdentifyResponse{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores the response under key, evicting the least recently used
// entry when full.
func (c *resultCache) Put(key string, val IdentifyResponse) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
