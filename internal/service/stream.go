package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/flow"
	"repro/internal/telemetry"
)

// StreamEvent is one NDJSON line of the POST /v1/pcap/stream response.
// While the upload runs, each closed flow arrives as a Flow event the
// moment its classification lands; the final line is a Capture event
// with the merged pipeline statistics (and Error when the stream died
// mid-way: the status code was committed long before).
type StreamEvent struct {
	// RequestID echoes the stream request's X-Request-ID on every line,
	// so interleaved NDJSON from several captures stays correlatable
	// after the fact (log shippers drop header context).
	RequestID string             `json:"request_id,omitempty"`
	Flow      *IdentifyResponse  `json:"flow,omitempty"`
	Capture   *flow.CaptureStats `json:"capture,omitempty"`
	Error     string             `json:"error,omitempty"`
}

// handlePcapStream accepts an unbounded pcap/pcapng byte stream (a live
// capture piped straight off an interface, or an endless file) and
// answers with chunked NDJSON: one line per classified flow, emitted as
// the flow closes -- idle past the epoch-expiry threshold, evicted, or
// drained at end of stream. Unlike POST /v1/pcap there is no body size
// cap and no job indirection; backpressure is the bound. The pipeline
// ring buffer stalls the upload when classification falls behind, so a
// slow consumer costs the client throughput, not the server memory.
// ?model= selects the registry model. Concurrent streams beyond
// Config.MaxStreams are shed with 429.
func (s *Service) handlePcapStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.streamRequests.Add(1)
	modelName := r.URL.Query().Get("model")
	model, err := s.registry.Get(modelName)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	select {
	case s.streamSem <- struct{}{}:
	default:
		s.metrics.streamRejected.Add(1)
		writeQueueFull(w, errStreamsBusy)
		return
	}
	defer func() { <-s.streamSem }()
	s.metrics.streamActive.Add(1)
	defer s.metrics.streamActive.Add(-1)

	// Results interleave with the still-uploading body, so HTTP/1.x needs
	// full-duplex explicitly enabled (HTTP/2 has it always; the error is
	// only "unsupported protocol", safe to ignore).
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()

	version := model.Version()
	reqID := requestIDFrom(r.Context())
	enc := json.NewEncoder(w)
	// The sink runs serially on the pipeline's emitter goroutine (and,
	// for the end-of-stream pairing flush, on this goroutine after the
	// emitter exits), so encoding to w needs no lock.
	st := flow.NewIdentifyStream(r.Context(), model.Identifier().Classifier(),
		flow.IdentifyStreamOptions{Stream: flow.StreamConfig{
			Metrics: s.metrics.streamMetrics(),
			Trace:   s.flight,
			TraceID: traceIDFrom(r.Context()),
		}},
		func(fi flow.FlowIdentification) {
			resp := toFlowResponse(version, fi)
			s.metrics.identifies.Add(1)
			s.metrics.countLabel(resp)
			_ = enc.Encode(StreamEvent{RequestID: reqID, Flow: &resp})
			_ = rc.Flush()
		})

	_, cerr := io.Copy(st, r.Body)
	if cerr != nil {
		// The upload died (client gone, or a pipeline decode error
		// surfaced through the ring as backpressure release). Tear down
		// without draining: the client is not reading flows anymore.
		st.Abort(cerr)
		s.metrics.streamErrors.Add(1)
		setOutcome(r.Context(), telemetry.OutcomeError)
		stats := st.Stats()
		_ = enc.Encode(StreamEvent{RequestID: reqID, Capture: &stats, Error: cerr.Error()})
		return
	}
	err = st.Close()
	stats := st.Stats()
	final := StreamEvent{RequestID: reqID, Capture: &stats}
	if err != nil {
		s.metrics.streamErrors.Add(1)
		setOutcome(r.Context(), telemetry.OutcomeError)
		final.Error = err.Error()
	}
	_ = enc.Encode(final)
	_ = rc.Flush()
}

// errStreamsBusy sheds stream requests past the MaxStreams bound.
var errStreamsBusy = errors.New("concurrent capture streams exhausted; retry shortly")
