package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// lockedBuffer is a goroutine-safe io.Writer for capturing access-log
// lines from concurrent request completions.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// postJSONWithID posts a JSON body with an explicit X-Request-ID header
// and returns the response (body fully read) plus its bytes.
func postJSONWithID(t *testing.T, url, reqID string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// spanNames collects kind/name pairs for containment assertions.
func spanNames(tr telemetry.Trace) map[string]bool {
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Kind+"/"+sp.Name] = true
	}
	return names
}

// TestTraceEndToEnd is the PR's acceptance pin: a slow request and an
// UNSURE request both come back with full span trees on
// GET /v1/traces/{id}, keyed by the same ID the client saw echoed in
// X-Request-ID, the job payload, and the access log line.
func TestTraceEndToEnd(t *testing.T) {
	registerFakeCodec()
	reg := NewRegistry()
	reg.Add("default", &fakeClassifier{Label: "RENO", Confidence: 0.9})
	reg.Add("shaky", &fakeClassifier{Label: "RENO", Confidence: core.UnsureThreshold / 2})
	var logBuf lockedBuffer
	s := New(reg, Config{
		// Normal sampling off and a 1ns slow threshold: every OK request
		// is retained as "slow", every UNSURE one as "outcome" -- the
		// retention reasons become assertable.
		TraceSampleN: -1,
		TraceSlow:    time.Nanosecond,
		AccessLog:    slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})

	// 1. A (threshold-)slow OK request under a client-supplied ID. The
	// boundary must echo exactly that ID back.
	const slowID = "e2e-slow-request"
	resp, data := postJSONWithID(t, srv.URL+"/v1/identify", slowID, identifyBody("RENO", 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("identify status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Request-ID"); got != slowID {
		t.Fatalf("X-Request-ID echo %q, want %q", got, slowID)
	}

	// 2. An UNSURE request with a minted ID: the echoed header is the
	// 16-hex trace ID itself.
	shaky := identifyBody("RENO", 2)
	shaky["model"] = "shaky"
	resp, data = postJSONWithID(t, srv.URL+"/v1/identify", "", shaky)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shaky identify status %d: %s", resp.StatusCode, data)
	}
	var unsureResp IdentifyResponse
	if err := json.Unmarshal(data, &unsureResp); err != nil {
		t.Fatal(err)
	}
	if unsureResp.Label != core.LabelUnsure {
		t.Fatalf("shaky model answered %q, want %q", unsureResp.Label, core.LabelUnsure)
	}
	mintedID := resp.Header.Get("X-Request-ID")
	if _, ok := telemetry.ParseTraceID(mintedID); !ok {
		t.Fatalf("minted X-Request-ID %q is not a 16-hex trace ID", mintedID)
	}

	// 3. Both span trees come back under the IDs the client holds.
	var slowTrace telemetry.Trace
	if r := getJSON(t, srv.URL+"/v1/traces/"+slowID, &slowTrace); r.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s status %d", slowID, r.StatusCode)
	}
	if slowTrace.RequestID != slowID || slowTrace.Outcome != "ok" || slowTrace.Retained != telemetry.RetainSlow {
		t.Fatalf("slow trace = %+v, want request_id %q, outcome ok, retained slow", slowTrace, slowID)
	}
	if slowTrace.Route != "POST /v1/identify" {
		t.Fatalf("slow trace route %q", slowTrace.Route)
	}
	names := spanNames(slowTrace)
	for _, want := range []string{"stage/cache", "stage/gather", "stage/feature", "stage/classify", "event/cache_miss"} {
		if !names[want] {
			t.Errorf("slow trace span %s missing (have %v)", want, names)
		}
	}

	var unsureTrace telemetry.Trace
	if r := getJSON(t, srv.URL+"/v1/traces/"+mintedID, &unsureTrace); r.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s status %d", mintedID, r.StatusCode)
	}
	if unsureTrace.ID != mintedID {
		t.Fatalf("unsure trace id %q, want the echoed header %q", unsureTrace.ID, mintedID)
	}
	if unsureTrace.Outcome != "unsure" || unsureTrace.Retained != telemetry.RetainOutcome {
		t.Fatalf("unsure trace = outcome %q retained %q, want unsure/outcome", unsureTrace.Outcome, unsureTrace.Retained)
	}
	if ns := spanNames(unsureTrace); !ns["event/unsure"] {
		t.Errorf("unsure trace has no unsure event: %v", ns)
	}

	// 4. The listing filters narrow correctly and reject junk.
	var listing struct {
		Traces []telemetry.TraceSummary `json:"traces"`
	}
	getJSON(t, srv.URL+"/v1/traces?outcome=unsure", &listing)
	found := false
	for _, tr := range listing.Traces {
		if tr.Outcome != "unsure" {
			t.Fatalf("outcome filter leaked %+v", tr)
		}
		found = found || tr.ID == mintedID
	}
	if !found {
		t.Fatalf("outcome=unsure listing misses %s: %+v", mintedID, listing.Traces)
	}
	getJSON(t, srv.URL+"/v1/traces?route="+url.QueryEscape("POST /v1/identify")+"&limit=1", &listing)
	if len(listing.Traces) != 1 || listing.Traces[0].Route != "POST /v1/identify" {
		t.Fatalf("route+limit filter = %+v", listing.Traces)
	}
	if r := getJSON(t, srv.URL+"/v1/traces?outcome=bogus", nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus outcome filter status %d, want 400", r.StatusCode)
	}
	if r := getJSON(t, srv.URL+"/v1/traces/ffffffffffffffff", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status %d, want 404", r.StatusCode)
	}

	// 5. An async batch under a supplied ID: the job payload echoes the
	// request ID and its trace ID, and job completion re-finishes the
	// trace so the retained tree covers the async work (route job:batch).
	const batchID = "e2e-batch-request"
	resp, data = postJSONWithID(t, srv.URL+"/v1/batch", batchID, map[string]any{
		"jobs": []map[string]any{
			{"server": map[string]any{"algorithm": "RENO"}, "seed": 11},
			{"server": map[string]any{"algorithm": "RENO"}, "seed": 12},
		},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	wantTraceID := telemetry.HashTraceID(batchID).String()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st JobStatus
		getJSON(t, srv.URL+"/v1/jobs/"+acc.JobID, &st)
		if st.RequestID != batchID || st.TraceID != wantTraceID {
			t.Fatalf("job payload identity = %q/%q, want %q/%q", st.RequestID, st.TraceID, batchID, wantTraceID)
		}
		if st.State == StateDone {
			break
		}
		if st.State == StateFailed || st.State == StateCancelled {
			t.Fatalf("batch ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("batch job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Job completion re-finishes the trace asynchronously with the
	// worker's retire; poll until the job-side scan replaced the
	// acceptance-side one.
	var jobTrace telemetry.Trace
	for {
		getJSON(t, srv.URL+"/v1/traces/"+batchID, &jobTrace)
		if jobTrace.Route == "job:batch" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never re-finished as job:batch: %+v", jobTrace)
		}
		time.Sleep(5 * time.Millisecond)
	}
	jobNames := spanNames(jobTrace)
	for _, want := range []string{"stage/queue_wait", "stage/classify", "event/shard_assign"} {
		if !jobNames[want] {
			t.Errorf("job trace span %s missing (have %v)", want, jobNames)
		}
	}

	// 6. The access log carries the same IDs (one line per request, keyed
	// id=...; slog's text handler quotes the space-bearing route values).
	logs := logBuf.String()
	for _, id := range []string{slowID, mintedID, batchID} {
		if !strings.Contains(logs, "id="+id) {
			t.Errorf("access log misses id=%s:\n%s", id, logs)
		}
	}
	if !strings.Contains(logs, `route="POST /v1/identify"`) {
		t.Errorf("access log has no matched route:\n%s", logs)
	}
}
