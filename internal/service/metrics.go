package service

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/census/shard"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/flow"
	"repro/internal/telemetry"
)

// metrics aggregates the service counters exposed at GET /metrics. All
// counters are monotonic except InFlight (a gauge).
type metrics struct {
	requests       atomic.Int64 // HTTP requests served, all endpoints
	identifies     atomic.Int64 // identifications executed (sync + batch, cache misses)
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	batchAccepted  atomic.Int64 // async jobs accepted
	batchRejected  atomic.Int64 // async jobs rejected (queue full / bad request)
	jobsCompleted  atomic.Int64
	jobsFailed     atomic.Int64 // cancelled or shut down mid-run
	inFlight       atomic.Int64 // probes currently executing (sync + batch)
	modelsReloaded atomic.Int64
	syncRejected   atomic.Int64 // sync identifies shed by the backlog bound (429)

	// censusJobs counts census campaigns accepted on POST /v1/census;
	// census is the process-wide sink every campaign's coordinator mirrors
	// its fault-tolerance counters into (retries, backoff, steals,
	// checkpoint writes, abandoned targets, per-target attempt histogram).
	censusJobs atomic.Int64
	census     shard.Metrics

	// Capture-ingestion counters (POST /v1/pcap).
	pcapUploads           atomic.Int64 // capture uploads received
	pcapFlowsSeen         atomic.Int64 // TCP flows reassembled from uploads
	pcapFlowsClassifiable atomic.Int64 // flows that yielded a valid trace
	pcapDecodeErrors      atomic.Int64 // uploads rejected as undecodable
	pcapBytes             atomic.Int64 // capture bytes ingested (throughput numerator)
	// pcapDecode observes each upload's decode+reassembly wall clock (the
	// throughput denominator, and the passive pipeline's gather latency at
	// upload granularity).
	pcapDecode telemetry.Histogram

	// Streaming-capture counters (POST /v1/pcap/stream). The gauges
	// aggregate across concurrent streams: streamLive is the total flows
	// resident in every running pipeline right now -- the number an
	// operator watches to confirm live-capture memory stays flat.
	streamRequests      atomic.Int64      // stream requests received
	streamRejected      atomic.Int64      // streams shed by the MaxStreams bound (429)
	streamErrors        atomic.Int64      // streams ended by a decode/transport error
	streamActive        telemetry.Gauge   // streams currently running
	streamLive          telemetry.Gauge   // flows live across all streams
	streamLiveHighWater telemetry.Gauge   // most flows ever live at once
	streamEpochs        telemetry.Counter // expiry sweep epochs completed
	streamExpired       telemetry.Counter // flows closed by idle expiry
	streamBytes         telemetry.Counter // capture bytes accepted by streams
	streamPackets       telemetry.Counter // capture records framed
	streamFlows         telemetry.Counter // flows emitted (expired+evicted+drained)
	streamRingHighWater telemetry.Gauge   // fullest any ingest ring has been

	// Outcome-class counters, one per identification, mirroring
	// internal/eval's accounting classes so /metrics and the evaluation
	// matrix slice results the same way. Exactly one of these increments
	// per identification; labeled covers confident labels (eval's
	// correct+wrong -- the service has no ground truth to split them).
	outcomeLabeled atomic.Int64
	outcomeUnsure  atomic.Int64
	outcomeSpecial atomic.Int64
	outcomeInvalid atomic.Int64

	// pipeline aggregates per-stage spans (queue wait, gather, feature,
	// classify, cache) from every recording path: sync identifies, batch
	// workers' block sessions, and pcap classification.
	pipeline telemetry.Pipeline

	// endpoints maps the matched route pattern -> *telemetry.Histogram of
	// request latency. Same sync.Map rationale as labels: a tiny key set
	// that stabilizes immediately.
	endpoints sync.Map

	// queueHighWater tracks the deepest the batch queue has been;
	// workersBusy counts workers currently executing a job;
	// finishedRetained is the finished-job retention window's occupancy.
	queueHighWater   telemetry.Gauge
	workersBusy      telemetry.Gauge
	finishedRetained telemetry.Gauge

	// labels maps reported label -> *atomic.Int64. The label set is tiny
	// and stabilizes after warm-up, which is sync.Map's sweet spot: the
	// request path is a lock-free read-and-add, with the store path taken
	// only the first time a label appears. (The previous mutex-guarded
	// map serialized every identification on one lock; see
	// BenchmarkCountLabel for the measured difference.)
	labels sync.Map
}

func newMetrics() *metrics {
	return &metrics{}
}

// streamMetrics binds the flow pipeline's instrument set to the service
// counters. Every stream shares the same instruments, so the gauges
// aggregate across concurrent uploads.
func (m *metrics) streamMetrics() *flow.StreamMetrics {
	return &flow.StreamMetrics{
		Tracker: flow.TrackerMetrics{
			Live:          &m.streamLive,
			LiveHighWater: &m.streamLiveHighWater,
			Epochs:        &m.streamEpochs,
			Expired:       &m.streamExpired,
		},
		Bytes:         &m.streamBytes,
		Packets:       &m.streamPackets,
		Flows:         &m.streamFlows,
		RingHighWater: &m.streamRingHighWater,
	}
}

// countLabel tallies one identification outcome under its reported label
// (special shapes and invalid traces get their own buckets) and under its
// outcome class. Lock-free on the request path once a label's counter
// exists.
func (m *metrics) countLabel(resp IdentifyResponse) {
	label := resp.Label
	switch {
	case !resp.Valid:
		label = "INVALID"
		m.outcomeInvalid.Add(1)
	case resp.Special != "":
		label = "SPECIAL:" + resp.Special
		m.outcomeSpecial.Add(1)
	case resp.Label == core.LabelUnsure:
		m.outcomeUnsure.Add(1)
	default:
		m.outcomeLabeled.Add(1)
	}
	c, ok := m.labels.Load(label)
	if !ok {
		c, _ = m.labels.LoadOrStore(label, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// observeEndpoint records one request's latency under its matched route
// pattern.
func (m *metrics) observeEndpoint(pattern string, d time.Duration) {
	h, ok := m.endpoints.Load(pattern)
	if !ok {
		h, _ = m.endpoints.LoadOrStore(pattern, new(telemetry.Histogram))
	}
	h.(*telemetry.Histogram).Observe(d)
}

// endpointSnapshots copies every endpoint histogram, keyed by pattern.
func (m *metrics) endpointSnapshots() map[string]telemetry.HistogramSnapshot {
	out := map[string]telemetry.HistogramSnapshot{}
	m.endpoints.Range(func(k, v any) bool {
		out[k.(string)] = v.(*telemetry.Histogram).Snapshot()
		return true
	})
	return out
}

// MetricsSnapshot is the GET /metrics response body.
type MetricsSnapshot struct {
	Requests       int64 `json:"requests_total"`
	Identifies     int64 `json:"identifications_total"`
	InFlight       int64 `json:"in_flight"`
	QueueDepth     int   `json:"queue_depth"`
	Workers        int   `json:"workers"`
	BatchAccepted  int64 `json:"batch_jobs_accepted"`
	BatchRejected  int64 `json:"batch_jobs_rejected"`
	JobsCompleted  int64 `json:"batch_jobs_completed"`
	JobsFailed     int64 `json:"batch_jobs_failed"`
	ModelsReloaded int64 `json:"models_reloaded"`
	SyncRejected   int64 `json:"sync_rejected"`

	Cache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
		Entries int     `json:"entries"`
		Max     int     `json:"max_entries"`
	} `json:"cache"`

	// QueueHighWater is the deepest the batch queue has been since start;
	// WorkersBusy counts workers currently executing a job;
	// FinishedRetained is how many finished jobs the retention window
	// currently keeps pollable (bounded by the JobRetention config).
	QueueHighWater   int64 `json:"queue_high_water"`
	WorkersBusy      int64 `json:"workers_busy"`
	FinishedRetained int64 `json:"finished_jobs_retained"`

	// Outcomes classifies every identification into exactly one bucket,
	// mirroring internal/eval's accounting classes. Labeled is a confident
	// algorithm label (eval's correct+wrong; the service holds no ground
	// truth to split them), Unsure the <40%-confidence verdict, Special a
	// special trace shape, Invalid a trace the prober rejected. Their sum
	// equals identifications_total.
	Outcomes struct {
		Labeled int64 `json:"labeled"`
		Unsure  int64 `json:"unsure"`
		Special int64 `json:"special"`
		Invalid int64 `json:"invalid"`
	} `json:"outcomes"`

	// Pcap reports capture-ingestion health: how many uploads arrived,
	// how many flows they held, how many of those reconstructed to
	// classifiable traces, how many uploads failed to decode, and the
	// ingested byte/decode-time totals (their ratio is ingest throughput).
	Pcap struct {
		Uploads      int64   `json:"uploads"`
		FlowsSeen    int64   `json:"flows_seen"`
		Classifiable int64   `json:"flows_classifiable"`
		DecodeErrors int64   `json:"decode_errors"`
		Bytes        int64   `json:"bytes"`
		DecodeMs     float64 `json:"decode_ms"`
	} `json:"pcap"`

	// Stream reports live-capture streaming health (POST
	// /v1/pcap/stream): request/shed/error totals, streams running now,
	// the aggregate live-flow gauge with its high water (the bounded-
	// memory witness), expiry-sweep counters, and pipeline throughput
	// (bytes, packets, flows, ring occupancy high water).
	Stream struct {
		Requests      int64 `json:"requests"`
		Rejected      int64 `json:"rejected"`
		Errors        int64 `json:"errors"`
		Active        int64 `json:"active"`
		LiveFlows     int64 `json:"live_flows"`
		LiveHighWater int64 `json:"live_flows_high_water"`
		Epochs        int64 `json:"epochs"`
		Expired       int64 `json:"expired_flows"`
		Bytes         int64 `json:"bytes"`
		Packets       int64 `json:"packets"`
		Flows         int64 `json:"flows"`
		RingHighWater int64 `json:"ring_high_water_bytes"`
	} `json:"stream"`

	// Census aggregates the fault-tolerance counters of every census
	// campaign run through POST /v1/census: probe retries and their
	// accumulated backoff, rate-limit deferrals, work steals, abandoned
	// targets, checkpoint writes, and the per-target contact-attempt
	// histogram (Attempts). Jobs counts accepted campaigns.
	Census struct {
		Jobs             int64                       `json:"jobs"`
		Probes           int64                       `json:"probes"`
		Retries          int64                       `json:"retries"`
		Deferrals        int64                       `json:"deferrals"`
		RateLimitWaits   int64                       `json:"rate_limit_waits"`
		Steals           int64                       `json:"steals"`
		TargetsAbandoned int64                       `json:"targets_abandoned"`
		BackoffSeconds   float64                     `json:"backoff_seconds"`
		CheckpointWrites int64                       `json:"checkpoint_writes"`
		WorkerCrashes    int64                       `json:"worker_crashes"`
		Attempts         telemetry.CountHistSnapshot `json:"attempts"`
	} `json:"census"`

	// Stages summarizes the per-stage pipeline latency histograms (see
	// internal/telemetry: queue_wait, gather, feature, classify, cache);
	// stages with no observations are omitted. Endpoints does the same per
	// matched HTTP route. Full bucket detail is on the Prometheus
	// exposition (GET /metrics?format=prometheus).
	Stages    map[string]LatencySummary `json:"stages,omitempty"`
	Endpoints map[string]LatencySummary `json:"endpoints,omitempty"`

	// Traces reports the flight recorder's accounting: spans written
	// into the rings, traces offered to tail sampling, and what happened
	// to them (retained / dropped-as-normal / lost to a full completion
	// queue), plus the retained store's current occupancy.
	Traces telemetry.FlightStats `json:"traces"`

	// Runtime is the Go runtime's own health read at snapshot time
	// (goroutines, heap, GC cycles and pause quantiles, scheduling
	// latency quantiles), so a latency spike is attributable to GC or
	// scheduler pressure without a second tool.
	Runtime telemetry.RuntimeStats `json:"runtime"`

	Labels map[string]int64 `json:"labels"`
	Models []ModelInfo      `json:"models"`

	// Eval is the latest scenario-matrix evaluation summary (overall and
	// per-scenario accuracy of the newest ACCURACY_<n>.json point), when
	// one was installed with Service.SetEvalSummary; absent otherwise.
	Eval *eval.Summary `json:"eval,omitempty"`
}

// LatencySummary condenses one latency histogram for the JSON snapshot:
// observation count, mean, and interpolated p50/p95/p99 estimates (see
// HistogramSnapshot.Quantile: linear within the holding log-spaced
// bucket), so /metrics consumers stop re-deriving quantiles from raw
// buckets.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
}

func summarize(s telemetry.HistogramSnapshot) LatencySummary {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	return LatencySummary{
		Count:  s.Count,
		MeanUs: us(s.Mean()),
		P50Us:  us(s.Quantile(0.5)),
		P95Us:  us(s.Quantile(0.95)),
		P99Us:  us(s.Quantile(0.99)),
	}
}

// ModelInfo describes one registry entry in /metrics and reload responses.
type ModelInfo struct {
	Name       string `json:"name"`
	Version    string `json:"version"`
	Backend    string `json:"backend"`
	Path       string `json:"path,omitempty"`
	LoadedAt   string `json:"loaded_at"`
	Generation int    `json:"generation"`
	Default    bool   `json:"default,omitempty"`
}

// snapshot captures the counters plus live queue/cache/registry state.
func (s *Service) snapshot() MetricsSnapshot {
	m := s.metrics
	var out MetricsSnapshot
	out.Requests = m.requests.Load()
	out.Identifies = m.identifies.Load()
	out.InFlight = m.inFlight.Load()
	out.QueueDepth = len(s.queue)
	out.Workers = s.cfg.Workers
	out.BatchAccepted = m.batchAccepted.Load()
	out.BatchRejected = m.batchRejected.Load()
	out.JobsCompleted = m.jobsCompleted.Load()
	out.JobsFailed = m.jobsFailed.Load()
	out.ModelsReloaded = m.modelsReloaded.Load()
	out.SyncRejected = m.syncRejected.Load()

	out.Census.Jobs = m.censusJobs.Load()
	out.Census.Probes = m.census.Probes.Load()
	out.Census.Retries = m.census.Retries.Load()
	out.Census.Deferrals = m.census.Deferrals.Load()
	out.Census.RateLimitWaits = m.census.RateLimitWaits.Load()
	out.Census.Steals = m.census.Steals.Load()
	out.Census.TargetsAbandoned = m.census.TargetsAbandoned.Load()
	out.Census.BackoffSeconds = time.Duration(m.census.BackoffNanos.Load()).Seconds()
	out.Census.CheckpointWrites = m.census.CheckpointWrites.Load()
	out.Census.WorkerCrashes = m.census.WorkerCrashes.Load()
	out.Census.Attempts = m.census.Attempts.Snapshot()

	out.Cache.Hits = m.cacheHits.Load()
	out.Cache.Misses = m.cacheMisses.Load()
	if total := out.Cache.Hits + out.Cache.Misses; total > 0 {
		out.Cache.HitRate = float64(out.Cache.Hits) / float64(total)
	}
	out.Cache.Entries = s.cache.Len()
	out.Cache.Max = s.cfg.CacheSize

	out.QueueHighWater = m.queueHighWater.Load()
	out.WorkersBusy = m.workersBusy.Load()
	out.FinishedRetained = m.finishedRetained.Load()

	out.Outcomes.Labeled = m.outcomeLabeled.Load()
	out.Outcomes.Unsure = m.outcomeUnsure.Load()
	out.Outcomes.Special = m.outcomeSpecial.Load()
	out.Outcomes.Invalid = m.outcomeInvalid.Load()

	out.Pcap.Uploads = m.pcapUploads.Load()
	out.Pcap.FlowsSeen = m.pcapFlowsSeen.Load()
	out.Pcap.Classifiable = m.pcapFlowsClassifiable.Load()
	out.Pcap.DecodeErrors = m.pcapDecodeErrors.Load()
	out.Pcap.Bytes = m.pcapBytes.Load()
	out.Pcap.DecodeMs = float64(m.pcapDecode.Snapshot().Sum) / float64(time.Millisecond)

	out.Stream.Requests = m.streamRequests.Load()
	out.Stream.Rejected = m.streamRejected.Load()
	out.Stream.Errors = m.streamErrors.Load()
	out.Stream.Active = m.streamActive.Load()
	out.Stream.LiveFlows = m.streamLive.Load()
	out.Stream.LiveHighWater = m.streamLiveHighWater.Load()
	out.Stream.Epochs = m.streamEpochs.Load()
	out.Stream.Expired = m.streamExpired.Load()
	out.Stream.Bytes = m.streamBytes.Load()
	out.Stream.Packets = m.streamPackets.Load()
	out.Stream.Flows = m.streamFlows.Load()
	out.Stream.RingHighWater = m.streamRingHighWater.Load()

	for st, snap := range m.pipeline.Snapshot() {
		if snap.Count == 0 {
			continue
		}
		if out.Stages == nil {
			out.Stages = map[string]LatencySummary{}
		}
		out.Stages[telemetry.Stage(st).String()] = summarize(snap)
	}
	for pattern, snap := range m.endpointSnapshots() {
		if out.Endpoints == nil {
			out.Endpoints = map[string]LatencySummary{}
		}
		out.Endpoints[pattern] = summarize(snap)
	}

	out.Labels = map[string]int64{}
	m.labels.Range(func(k, v any) bool {
		out.Labels[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})

	out.Traces = s.flight.Stats()
	out.Runtime = telemetry.ReadRuntimeStats()

	out.Models = s.modelInfos()
	out.Eval = s.latestEvalSummary()
	return out
}

// newModelInfo renders one registry entry for /metrics, /v1/models, and
// reload responses.
func newModelInfo(m *Model) ModelInfo {
	return ModelInfo{
		Name:       m.Name,
		Version:    m.Version(),
		Backend:    m.Backend,
		Path:       m.Path,
		LoadedAt:   m.LoadedAt.UTC().Format(time.RFC3339),
		Generation: m.Generation,
	}
}

func (s *Service) modelInfos() []ModelInfo {
	models := s.registry.Snapshot()
	out := make([]ModelInfo, 0, len(models))
	for i, m := range models {
		info := newModelInfo(m)
		info.Default = i == 0
		out = append(out, info)
	}
	return out
}
