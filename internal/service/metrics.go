package service

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eval"
)

// metrics aggregates the service counters exposed at GET /metrics. All
// counters are monotonic except InFlight (a gauge).
type metrics struct {
	requests       atomic.Int64 // HTTP requests served, all endpoints
	identifies     atomic.Int64 // identifications executed (sync + batch, cache misses)
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	batchAccepted  atomic.Int64 // async jobs accepted
	batchRejected  atomic.Int64 // async jobs rejected (queue full / bad request)
	jobsCompleted  atomic.Int64
	jobsFailed     atomic.Int64 // cancelled or shut down mid-run
	inFlight       atomic.Int64 // probes currently executing (sync + batch)
	modelsReloaded atomic.Int64

	// Capture-ingestion counters (POST /v1/pcap).
	pcapUploads           atomic.Int64 // capture uploads received
	pcapFlowsSeen         atomic.Int64 // TCP flows reassembled from uploads
	pcapFlowsClassifiable atomic.Int64 // flows that yielded a valid trace
	pcapDecodeErrors      atomic.Int64 // uploads rejected as undecodable

	// labels maps reported label -> *atomic.Int64. The label set is tiny
	// and stabilizes after warm-up, which is sync.Map's sweet spot: the
	// request path is a lock-free read-and-add, with the store path taken
	// only the first time a label appears. (The previous mutex-guarded
	// map serialized every identification on one lock; see
	// BenchmarkCountLabel for the measured difference.)
	labels sync.Map
}

func newMetrics() *metrics {
	return &metrics{}
}

// countLabel tallies one identification outcome under its reported label
// (special shapes and invalid traces get their own buckets). Lock-free on
// the request path once a label's counter exists.
func (m *metrics) countLabel(resp IdentifyResponse) {
	label := resp.Label
	switch {
	case !resp.Valid:
		label = "INVALID"
	case resp.Special != "":
		label = "SPECIAL:" + resp.Special
	}
	c, ok := m.labels.Load(label)
	if !ok {
		c, _ = m.labels.LoadOrStore(label, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// MetricsSnapshot is the GET /metrics response body.
type MetricsSnapshot struct {
	Requests       int64 `json:"requests_total"`
	Identifies     int64 `json:"identifications_total"`
	InFlight       int64 `json:"in_flight"`
	QueueDepth     int   `json:"queue_depth"`
	Workers        int   `json:"workers"`
	BatchAccepted  int64 `json:"batch_jobs_accepted"`
	BatchRejected  int64 `json:"batch_jobs_rejected"`
	JobsCompleted  int64 `json:"batch_jobs_completed"`
	JobsFailed     int64 `json:"batch_jobs_failed"`
	ModelsReloaded int64 `json:"models_reloaded"`

	Cache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
		Entries int     `json:"entries"`
		Max     int     `json:"max_entries"`
	} `json:"cache"`

	// Pcap reports capture-ingestion health: how many uploads arrived,
	// how many flows they held, how many of those reconstructed to
	// classifiable traces, and how many uploads failed to decode.
	Pcap struct {
		Uploads      int64 `json:"uploads"`
		FlowsSeen    int64 `json:"flows_seen"`
		Classifiable int64 `json:"flows_classifiable"`
		DecodeErrors int64 `json:"decode_errors"`
	} `json:"pcap"`

	Labels map[string]int64 `json:"labels"`
	Models []ModelInfo      `json:"models"`

	// Eval is the latest scenario-matrix evaluation summary (overall and
	// per-scenario accuracy of the newest ACCURACY_<n>.json point), when
	// one was installed with Service.SetEvalSummary; absent otherwise.
	Eval *eval.Summary `json:"eval,omitempty"`
}

// ModelInfo describes one registry entry in /metrics and reload responses.
type ModelInfo struct {
	Name       string `json:"name"`
	Version    string `json:"version"`
	Backend    string `json:"backend"`
	Path       string `json:"path,omitempty"`
	LoadedAt   string `json:"loaded_at"`
	Generation int    `json:"generation"`
	Default    bool   `json:"default,omitempty"`
}

// snapshot captures the counters plus live queue/cache/registry state.
func (s *Service) snapshot() MetricsSnapshot {
	m := s.metrics
	var out MetricsSnapshot
	out.Requests = m.requests.Load()
	out.Identifies = m.identifies.Load()
	out.InFlight = m.inFlight.Load()
	out.QueueDepth = len(s.queue)
	out.Workers = s.cfg.Workers
	out.BatchAccepted = m.batchAccepted.Load()
	out.BatchRejected = m.batchRejected.Load()
	out.JobsCompleted = m.jobsCompleted.Load()
	out.JobsFailed = m.jobsFailed.Load()
	out.ModelsReloaded = m.modelsReloaded.Load()

	out.Cache.Hits = m.cacheHits.Load()
	out.Cache.Misses = m.cacheMisses.Load()
	if total := out.Cache.Hits + out.Cache.Misses; total > 0 {
		out.Cache.HitRate = float64(out.Cache.Hits) / float64(total)
	}
	out.Cache.Entries = s.cache.Len()
	out.Cache.Max = s.cfg.CacheSize

	out.Pcap.Uploads = m.pcapUploads.Load()
	out.Pcap.FlowsSeen = m.pcapFlowsSeen.Load()
	out.Pcap.Classifiable = m.pcapFlowsClassifiable.Load()
	out.Pcap.DecodeErrors = m.pcapDecodeErrors.Load()

	out.Labels = map[string]int64{}
	m.labels.Range(func(k, v any) bool {
		out.Labels[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})

	out.Models = s.modelInfos()
	out.Eval = s.latestEvalSummary()
	return out
}

// newModelInfo renders one registry entry for /metrics, /v1/models, and
// reload responses.
func newModelInfo(m *Model) ModelInfo {
	return ModelInfo{
		Name:       m.Name,
		Version:    m.Version(),
		Backend:    m.Backend,
		Path:       m.Path,
		LoadedAt:   m.LoadedAt.UTC().Format(time.RFC3339),
		Generation: m.Generation,
	}
}

func (s *Service) modelInfos() []ModelInfo {
	models := s.registry.Snapshot()
	out := make([]ModelInfo, 0, len(models))
	for i, m := range models {
		info := newModelInfo(m)
		info.Default = i == 0
		out = append(out, info)
	}
	return out
}
