package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/pcapgen"
	"repro/internal/probe"
)

// streamEvents POSTs capture bytes to /v1/pcap/stream and decodes the
// NDJSON response.
func streamEvents(t *testing.T, url string, body []byte) (*http.Response, []StreamEvent) {
	t.Helper()
	resp, err := http.Post(url+"/v1/pcap/stream", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, events
}

// TestPcapStreamEndToEnd streams a multi-flow capture and receives one
// NDJSON line per classified flow pair plus a final capture summary --
// the streaming mirror of TestPcapEndToEnd, with no job indirection.
func TestPcapStreamEndToEnd(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "CUBIC2", Confidence: 0.93})

	var capture bytes.Buffer
	if _, err := pcapgen.Generate(&capture, []pcapgen.ServerSpec{
		{Algorithm: "CUBIC2", Seed: 31},
		{Algorithm: "RENO", Seed: 32},
	}, pcapgen.Options{Probe: probe.Config{WmaxLadder: []int{64}}}); err != nil {
		t.Fatal(err)
	}

	resp, events := streamEvents(t, ts.URL, capture.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	final := events[len(events)-1]
	if final.Capture == nil || final.Error != "" {
		t.Fatalf("final event: %+v", final)
	}
	if final.Capture.Flows != 4 || final.Capture.TCPSegments == 0 {
		t.Fatalf("capture stats: %+v", *final.Capture)
	}
	servers := map[string]bool{}
	paired := 0
	for _, ev := range events[:len(events)-1] {
		if ev.Flow == nil {
			t.Fatalf("non-flow event before the summary: %+v", ev)
		}
		if !ev.Flow.Valid || ev.Flow.Label != "CUBIC2" {
			t.Fatalf("flow not classified: %+v", ev.Flow)
		}
		if ev.Flow.Flow != nil && ev.Flow.Flow.ClientB != "" {
			paired++
		}
		servers[ev.Flow.Server] = true
	}
	if len(servers) != 2 || paired != 2 {
		t.Fatalf("streamed %d servers, %d paired results, want 2 and 2", len(servers), paired)
	}

	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Stream.Requests != 1 || snap.Stream.Errors != 0 || snap.Stream.Active != 0 {
		t.Fatalf("stream metrics: %+v", snap.Stream)
	}
	if snap.Stream.Bytes != int64(capture.Len()) || snap.Stream.Flows != 4 || snap.Stream.LiveHighWater == 0 {
		t.Fatalf("stream pipeline metrics: %+v", snap.Stream)
	}
	if snap.Stream.LiveFlows != 0 {
		t.Fatalf("live flows after stream end = %d, want 0", snap.Stream.LiveFlows)
	}
	if snap.Labels["CUBIC2"] != 2 {
		t.Fatalf("label counters: %+v", snap.Labels)
	}
}

// TestPcapStreamAcceptsPUT: `curl -T` and most streaming-upload clients
// send PUT, so the endpoint must accept it identically to POST (the
// README's tcpdump pipeline example depends on this).
func TestPcapStreamAcceptsPUT(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "CUBIC2", Confidence: 0.93})

	var capture bytes.Buffer
	if _, err := pcapgen.Generate(&capture, []pcapgen.ServerSpec{
		{Algorithm: "CUBIC2", Seed: 31},
	}, pcapgen.Options{Probe: probe.Config{WmaxLadder: []int{64}}}); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/pcap/stream", bytes.NewReader(capture.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	var final StreamEvent
	if err := json.Unmarshal(lines[len(lines)-1], &final); err != nil {
		t.Fatal(err)
	}
	if final.Capture == nil || final.Error != "" || final.Capture.Flows != 2 {
		t.Fatalf("final event: %+v", final)
	}
}

// TestPcapStreamGarbage: an undecodable stream still answers 200 (the
// header is committed before the first byte decodes) but the final
// event carries the decode error.
func TestPcapStreamGarbage(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "X", Confidence: 1})
	resp, events := streamEvents(t, ts.URL, []byte("this is not a capture, not even close"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	final := events[len(events)-1]
	if final.Error == "" {
		t.Fatalf("garbage stream reported no error: %+v", final)
	}
	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Stream.Errors != 1 {
		t.Fatalf("stream error counter: %+v", snap.Stream)
	}
}

func TestPcapStreamRejectsUnknownModel(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "X", Confidence: 1})
	resp, err := http.Post(ts.URL+"/v1/pcap/stream?model=nope", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d", resp.StatusCode)
	}
}

// TestPcapStreamShedsPastBound holds MaxStreams uploads open and expects
// the next one to shed with 429 instead of queueing.
func TestPcapStreamShedsPastBound(t *testing.T) {
	s, ts := newTestService(t, Config{MaxStreams: 1}, &fakeClassifier{Label: "X", Confidence: 1})

	pr, pw := io.Pipe()
	// Unblock the held stream no matter how the test exits, or the
	// server's connection drain in cleanup would hang.
	t.Cleanup(func() { pw.Close() })
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/pcap/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
		firstDone <- err
	}()

	// Wait until the first stream provably holds the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.streamActive.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first stream never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/pcap/stream", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second stream: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	pw.Close()
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Stream.Rejected != 1 {
		t.Fatalf("rejected counter: %+v", snap.Stream)
	}
}

// TestPcapStreamClientCancelNoLeak cancels an in-flight stream upload
// mid-body and verifies the pipeline unwinds: no goroutines remain, the
// stream slot frees, and the live-flow gauge returns to zero.
func TestPcapStreamClientCancelNoLeak(t *testing.T) {
	s, ts := newTestService(t, Config{MaxStreams: 1}, &fakeClassifier{Label: "X", Confidence: 1})

	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		pr, pw := io.Pipe()
		t.Cleanup(func() { cancel(); pw.Close() })
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/pcap/stream", pr)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // abort races the copy
				resp.Body.Close()
			}
		}()
		// A valid header plus a partial record keeps the pipeline parked
		// mid-decode when the cancel lands.
		hdr := []byte{0xd4, 0xc3, 0xb2, 0xa1, 2, 0, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0, 0, 1, 0, 0, 0}
		if _, err := pw.Write(hdr); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
		cancel()
		pw.CloseWithError(context.Canceled)
		<-done
	}

	// The slot must be free again: a normal request succeeds immediately.
	resp, err := http.Post(ts.URL+"/v1/pcap/stream", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slot not released: status %d", resp.StatusCode)
	}

	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Stream.Active != 0 || snap.Stream.LiveFlows != 0 {
		t.Fatalf("stream state leaked: %+v", snap.Stream)
	}
	if s.metrics.streamRequests.Load() < 4 {
		t.Fatalf("requests counted: %+v", snap.Stream)
	}

	// Goroutines settle back to (about) the baseline; generous slack for
	// the HTTP keep-alive pool.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: before %d, after %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
