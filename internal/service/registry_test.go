package service

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/classify"
)

// fakeClassifier is a deterministic stand-in for a trained model: it
// labels everything with Label at Confidence, skipping real training so
// service tests stay fast.
type fakeClassifier struct {
	Label      string  `json:"label"`
	Confidence float64 `json:"confidence"`

	// gate, when non-nil, blocks every Classify call until the channel is
	// closed -- the tests use it to hold batch jobs in the running state.
	gate chan struct{}
	// started, when non-nil, receives one send as each Classify call
	// enters (before blocking on gate), so tests can wait for a probe to
	// be provably in flight.
	started chan struct{}
}

func (f *fakeClassifier) Name() string { return "svc-test" }

func (f *fakeClassifier) Classify([]float64) (string, float64) {
	if f.started != nil {
		f.started <- struct{}{}
	}
	if f.gate != nil {
		<-f.gate
	}
	return f.Label, f.Confidence
}

// fakeCodec persists fakeClassifier so registry reload tests can round-trip
// models through disk without training a forest.
type fakeCodec struct{}

func (fakeCodec) Backend() string { return "svc-test" }

func (fakeCodec) Encode(w io.Writer, c classify.Classifier) error {
	return json.NewEncoder(w).Encode(c.(*fakeClassifier))
}

func (fakeCodec) Decode(r io.Reader) (classify.Classifier, error) {
	var f fakeClassifier
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

var registerFakeOnce sync.Once

// registerFakeCodec installs the svc-test codec exactly once per test
// binary (RegisterCodec panics on duplicates).
func registerFakeCodec() {
	registerFakeOnce.Do(func() { classify.RegisterCodec(fakeCodec{}) })
}

// saveFakeModel writes a fake model file and returns its path.
func saveFakeModel(t *testing.T, dir, name, label string, conf float64) string {
	t.Helper()
	registerFakeCodec()
	path := filepath.Join(dir, name)
	if err := classify.SaveFile(path, &fakeClassifier{Label: label, Confidence: conf}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegistryDefaultIsFirstRegistered(t *testing.T) {
	r := NewRegistry()
	r.Add("alpha", &fakeClassifier{Label: "A", Confidence: 1})
	r.Add("beta", &fakeClassifier{Label: "B", Confidence: 1})
	m, err := r.Get("")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "alpha" {
		t.Fatalf("default model = %s, want alpha", m.Name)
	}
	if names := r.Names(); names[0] != "alpha" || len(names) != 2 {
		t.Fatalf("Names() = %v", names)
	}
}

func TestRegistryGetUnknown(t *testing.T) {
	r := NewRegistry()
	r.Add("only", &fakeClassifier{Label: "X", Confidence: 1})
	if _, err := r.Get("nope"); !errors.Is(err, ErrNoModel) {
		t.Fatalf("Get(nope) err = %v, want ErrNoModel", err)
	}
}

func TestRegistryHotSwapBumpsGeneration(t *testing.T) {
	r := NewRegistry()
	m1 := r.Add("m", &fakeClassifier{Label: "OLD", Confidence: 1})
	if m1.Generation != 1 || m1.Version() != "m@1" {
		t.Fatalf("first install: gen %d version %s", m1.Generation, m1.Version())
	}
	m2 := r.Add("m", &fakeClassifier{Label: "NEW", Confidence: 1})
	if m2.Generation != 2 || m2.Version() != "m@2" {
		t.Fatalf("swap: gen %d version %s", m2.Generation, m2.Version())
	}
	// The old *Model stays usable for requests that resolved it pre-swap.
	if label, _ := m1.Identifier().Classifier().Classify(nil); label != "OLD" {
		t.Fatalf("pre-swap model now answers %s", label)
	}
	got, _ := r.Get("m")
	if label, _ := got.Identifier().Classifier().Classify(nil); label != "NEW" {
		t.Fatalf("post-swap Get answers %s", label)
	}
}

func TestRegistryLoadAndReloadFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := saveFakeModel(t, dir, "m.json", "FIRST", 0.9)
	r := NewRegistry()
	m, err := r.Load("m", path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Backend != "svc-test" || m.Path != path || m.Generation != 1 {
		t.Fatalf("loaded model = %+v", m)
	}

	// Overwrite the file and reload: the swap must serve the new weights.
	saveFakeModel(t, dir, "m.json", "SECOND", 0.8)
	reloaded, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != 1 || reloaded[0].Generation != 2 {
		t.Fatalf("reloaded = %+v", reloaded)
	}
	got, _ := r.Get("m")
	if label, _ := got.Identifier().Classifier().Classify(nil); label != "SECOND" {
		t.Fatalf("post-reload label = %s", label)
	}
}

func TestRegistryReloadFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	path := saveFakeModel(t, dir, "m.json", "GOOD", 0.9)
	r := NewRegistry()
	if _, err := r.Load("m", path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reload(); err == nil {
		t.Fatal("reload of a corrupt file reported success")
	}
	// The old entry must still answer.
	got, err := r.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 1 {
		t.Fatalf("corrupt reload bumped generation to %d", got.Generation)
	}
	if label, _ := got.Identifier().Classifier().Classify(nil); label != "GOOD" {
		t.Fatalf("model answers %s after failed reload", label)
	}
}

func TestRegistryReloadSkipsInProcessModels(t *testing.T) {
	r := NewRegistry()
	r.Add("mem", &fakeClassifier{Label: "M", Confidence: 1})
	reloaded, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != 0 {
		t.Fatalf("reload touched %d in-process models", len(reloaded))
	}
}

func TestAddOverFileBackedModelClearsPath(t *testing.T) {
	dir := t.TempDir()
	path := saveFakeModel(t, dir, "m.json", "DISK", 0.9)
	r := NewRegistry()
	if _, err := r.Load("m", path); err != nil {
		t.Fatal(err)
	}
	// Hot-swap with an in-process classifier: the stale file must not be
	// resurrectable by a later Reload.
	r.Add("m", &fakeClassifier{Label: "MEM", Confidence: 1})
	reloaded, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != 0 {
		t.Fatalf("Reload touched %d models, want 0 (in-process swap)", len(reloaded))
	}
	m, _ := r.Get("m")
	if label, _ := m.Identifier().Classifier().Classify(nil); label != "MEM" {
		t.Fatalf("serving %s after in-process swap", label)
	}
}
