package service

import (
	"io"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// wantsPrometheus decides whether a GET /metrics request asked for the
// Prometheus text exposition instead of the default JSON snapshot: an
// explicit ?format=prometheus, or an Accept header naming text/plain or
// an OpenMetrics type (what Prometheus scrapers send). Browsers and the
// existing JSON consumers keep getting JSON.
func wantsPrometheus(format, accept string) bool {
	if format == "prometheus" {
		return true
	}
	if format != "" {
		return false
	}
	accept = strings.ToLower(accept)
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// writePrometheus renders the full scrape body: every JSON-snapshot
// counter and gauge under a caai_ prefix, the outcome and label counter
// vectors, and the request/stage latency histograms at full bucket
// resolution (which the JSON snapshot only summarizes).
func (s *Service) writePrometheus(w io.Writer) error {
	snap := s.snapshot()
	m := s.metrics
	pw := telemetry.NewPromWriter(w)

	pw.Counter("caai_requests_total", "HTTP requests served, all endpoints.", snap.Requests)
	pw.Counter("caai_identifications_total", "Identifications executed (sync + batch, cache misses).", snap.Identifies)
	pw.Gauge("caai_in_flight", "Probes currently executing (sync + batch).", float64(snap.InFlight))
	pw.Gauge("caai_queue_depth", "Batch jobs waiting in the bounded queue.", float64(snap.QueueDepth))
	pw.Gauge("caai_queue_high_water", "Deepest the batch queue has been since start.", float64(snap.QueueHighWater))
	pw.Gauge("caai_workers", "Configured batch workers.", float64(snap.Workers))
	pw.Gauge("caai_workers_busy", "Workers currently executing a job.", float64(snap.WorkersBusy))
	pw.Gauge("caai_finished_jobs_retained", "Finished jobs kept pollable by the retention window.", float64(snap.FinishedRetained))
	pw.Counter("caai_batch_jobs_accepted_total", "Async jobs accepted.", snap.BatchAccepted)
	pw.Counter("caai_batch_jobs_rejected_total", "Async jobs rejected (queue full / bad request).", snap.BatchRejected)
	pw.Counter("caai_batch_jobs_completed_total", "Async jobs finished successfully.", snap.JobsCompleted)
	pw.Counter("caai_batch_jobs_failed_total", "Async jobs cancelled or failed.", snap.JobsFailed)
	pw.Counter("caai_models_reloaded_total", "Model hot-swaps applied.", snap.ModelsReloaded)
	pw.Counter("caai_sync_rejected_total", "Sync identifies shed by the backlog bound (429).", snap.SyncRejected)

	pw.Counter("caai_census_jobs_total", "Census campaigns accepted on POST /v1/census.", snap.Census.Jobs)
	pw.Counter("caai_census_probes_total", "Census probes executed (injected faults excluded).", snap.Census.Probes)
	pw.Counter("caai_census_retries_total", "Census probe attempts re-queued after a transient timeout.", snap.Census.Retries)
	pw.Counter("caai_census_deferrals_total", "Census rate-limited attempts deferred without consuming an attempt.", snap.Census.Deferrals)
	pw.Counter("caai_census_rate_limit_waits_total", "Census probes delayed by per-target/per-worker token buckets.", snap.Census.RateLimitWaits)
	pw.Counter("caai_census_steals_total", "Census work batches stolen from another worker's queue.", snap.Census.Steals)
	pw.Counter("caai_census_targets_abandoned_total", "Census targets abandoned (retries/deferrals exhausted or unreachable).", snap.Census.TargetsAbandoned)
	pw.FloatCounter("caai_census_backoff_seconds_total", "Total scheduled census retry/deferral backoff delay.", snap.Census.BackoffSeconds)
	pw.Counter("caai_census_checkpoint_writes_total", "Census checkpoint records durably appended.", snap.Census.CheckpointWrites)
	pw.Counter("caai_census_worker_crashes_total", "Census worker deaths injected by fault plans.", snap.Census.WorkerCrashes)
	pw.CountHistogram("caai_census_attempts", "Per-target census contact attempts consumed (1 = first-try success).",
		nil, snap.Census.Attempts)

	pw.Counter("caai_cache_hits_total", "Result-cache hits (incl. coalesced followers).", snap.Cache.Hits)
	pw.Counter("caai_cache_misses_total", "Result-cache misses.", snap.Cache.Misses)
	pw.Gauge("caai_cache_entries", "Result-cache occupancy.", float64(snap.Cache.Entries))

	pw.Counter("caai_pcap_uploads_total", "Capture uploads received.", snap.Pcap.Uploads)
	pw.Counter("caai_pcap_flows_total", "TCP flows reassembled from uploads.", snap.Pcap.FlowsSeen)
	pw.Counter("caai_pcap_flows_classifiable_total", "Reassembled flows with a valid CAAI trace.", snap.Pcap.Classifiable)
	pw.Counter("caai_pcap_decode_errors_total", "Uploads rejected as undecodable.", snap.Pcap.DecodeErrors)
	pw.Counter("caai_pcap_bytes_total", "Capture bytes ingested.", snap.Pcap.Bytes)
	pw.Histogram("caai_pcap_decode_seconds", "Per-upload capture decode+reassembly time.",
		nil, m.pcapDecode.Snapshot())

	pw.Counter("caai_stream_requests_total", "Capture stream requests received (POST /v1/pcap/stream).", snap.Stream.Requests)
	pw.Counter("caai_stream_rejected_total", "Capture streams shed by the concurrency bound (429).", snap.Stream.Rejected)
	pw.Counter("caai_stream_errors_total", "Capture streams ended by a decode or transport error.", snap.Stream.Errors)
	pw.Gauge("caai_stream_active", "Capture streams running now.", float64(snap.Stream.Active))
	pw.Gauge("caai_stream_live_flows", "Flows resident across all running stream pipelines.", float64(snap.Stream.LiveFlows))
	pw.Gauge("caai_stream_live_flows_high_water", "Most flows ever resident at once.", float64(snap.Stream.LiveHighWater))
	pw.Counter("caai_stream_epochs_total", "Idle-expiry sweep epochs completed.", snap.Stream.Epochs)
	pw.Counter("caai_stream_expired_flows_total", "Flows closed by idle expiry.", snap.Stream.Expired)
	pw.Counter("caai_stream_bytes_total", "Capture bytes accepted by stream uploads.", snap.Stream.Bytes)
	pw.Counter("caai_stream_packets_total", "Capture records framed by stream pipelines.", snap.Stream.Packets)
	pw.Counter("caai_stream_flows_total", "Flows emitted by stream pipelines (expired+evicted+drained).", snap.Stream.Flows)
	pw.Gauge("caai_stream_ring_high_water_bytes", "Fullest any stream ingest ring has been.", float64(snap.Stream.RingHighWater))

	pw.Counter("caai_trace_spans_total", "Spans written into the flight-recorder rings.", snap.Traces.Spans)
	pw.Counter("caai_trace_finished_total", "Traces offered to tail sampling at completion.", snap.Traces.Finished)
	pw.Counter("caai_trace_retained_total", "Traces kept by tail sampling (outcome / slow / sampled).", snap.Traces.Retained)
	pw.Counter("caai_trace_dropped_total", "Normal traces discarded by tail sampling.", snap.Traces.Dropped)
	pw.Counter("caai_trace_lost_total", "Trace completions lost to a full collector queue.", snap.Traces.Lost)
	pw.Gauge("caai_trace_stored", "Traces currently held in the bounded retained store.", float64(snap.Traces.Stored))

	pw.Gauge("caai_runtime_goroutines", "Live goroutines.", float64(snap.Runtime.Goroutines))
	pw.Gauge("caai_runtime_heap_bytes", "Bytes of live heap objects.", float64(snap.Runtime.HeapBytes))
	pw.Counter("caai_runtime_gc_cycles_total", "Completed GC cycles.", snap.Runtime.GCCycles)
	pw.Gauge("caai_runtime_gc_pause_p50_seconds", "Median stop-the-world GC pause.", snap.Runtime.GCPauseP50Us/1e6)
	pw.Gauge("caai_runtime_gc_pause_p99_seconds", "p99 stop-the-world GC pause.", snap.Runtime.GCPauseP99Us/1e6)
	pw.Gauge("caai_runtime_sched_latency_p50_seconds", "Median goroutine scheduling latency.", snap.Runtime.SchedLatencyP50Us/1e6)
	pw.Gauge("caai_runtime_sched_latency_p99_seconds", "p99 goroutine scheduling latency.", snap.Runtime.SchedLatencyP99Us/1e6)

	pw.CounterVec("caai_outcomes_total",
		"Identifications by outcome class (labeled/unsure/special/invalid, mirrors internal/eval).",
		"outcome", map[string]int64{
			"labeled": snap.Outcomes.Labeled,
			"unsure":  snap.Outcomes.Unsure,
			"special": snap.Outcomes.Special,
			"invalid": snap.Outcomes.Invalid,
		})
	pw.CounterVec("caai_labels_total", "Identifications by reported label.", "label", snap.Labels)

	// One family per histogram vector; every label set shares the
	// HELP/TYPE preamble.
	pipeline := m.pipeline.Snapshot()
	pw.Header("caai_stage_duration_seconds", "Pipeline per-stage latency (queue wait, gather, feature, classify, cache).", "histogram")
	for st, hs := range pipeline {
		if hs.Count == 0 {
			continue
		}
		pw.HistogramSamples("caai_stage_duration_seconds",
			map[string]string{"stage": telemetry.Stage(st).String()}, hs)
	}

	endpoints := m.endpointSnapshots()
	pw.Header("caai_request_duration_seconds", "HTTP request latency by matched route.", "histogram")
	for _, pattern := range sortedKeys(endpoints) {
		pw.HistogramSamples("caai_request_duration_seconds",
			map[string]string{"endpoint": pattern}, endpoints[pattern])
	}

	return pw.Err()
}

// sortedKeys gives the exposition a deterministic series order.
func sortedKeys(m map[string]telemetry.HistogramSnapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
