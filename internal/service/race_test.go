package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/eval"
)

// TestConcurrentSubmitCancelReloadRace hammers the async queue from every
// direction at once — batch submits, status polls, cancellations, model
// hot-reloads, metrics reads, and eval-summary swaps — so `go test -race`
// (which CI runs on every push) patrols the service's whole shared-state
// surface: the queue/closeMu handoff, the job store and retention queue,
// the registry swap path, and the metrics snapshot.
func TestConcurrentSubmitCancelReloadRace(t *testing.T) {
	dir := t.TempDir()
	path := saveFakeModel(t, dir, "m.json", "RENO-BIG", 0.9)
	reg := NewRegistry()
	if _, err := reg.Load("default", path); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{Workers: 2, QueueSize: 8, JobRetention: 4, CacheSize: 16})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	const (
		submitters = 4
		rounds     = 8
	)
	var wg sync.WaitGroup

	// Submitters: each fires rounds small batches and polls/cancels them.
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				req := BatchRequest{Jobs: []JobSpec{
					{Server: ServerSpec{Algorithm: "RENO"}, Seed: int64(g*1000 + r + 1)},
					{Server: ServerSpec{Algorithm: "CUBIC2"}, Seed: int64(g*1000 + r + 1)},
				}}
				j, err := s.submit(context.Background(), req)
				if err != nil {
					continue // full queue under pressure is expected
				}
				if r%2 == 0 {
					if jb, ok := s.lookupJob(j.id); ok {
						jb.requestCancel()
					}
				}
				if jb, ok := s.lookupJob(j.id); ok {
					_ = jb.status()
				}
			}
		}(g)
	}

	// Reloader: hot-swaps the model file from under the running batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			saveFakeModel(t, dir, "m.json", fmt.Sprintf("GEN%d", r), 0.9)
			resp, err := http.Post(ts.URL+"/v1/models/reload", "application/json", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}
	}()

	// Observer: metrics reads interleaved with eval-summary swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds*2; r++ {
			s.SetEvalSummary(eval.Summary{Label: fmt.Sprintf("sweep-%d", r), OverallAccuracy: 0.9})
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			_ = s.snapshot()
		}
	}()

	wg.Wait()

	// The service must still be coherent: a fresh sync identify works and
	// the counters parse.
	resp, data := postJSON(t, ts.URL+"/v1/identify", identifyBody("RENO", 424242))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-storm identify status %d: %s", resp.StatusCode, data)
	}
	snap := s.snapshot()
	if snap.BatchAccepted < 1 {
		t.Fatalf("no batches were ever accepted: %+v", snap)
	}
	if snap.Eval == nil {
		t.Fatal("eval summary lost during the storm")
	}
}
