package service

import (
	"errors"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/flow"
	"repro/internal/trace"
)

// handlePcap accepts a raw pcap/pcapng capture (octet-stream body),
// reassembles its TCP flows while streaming the upload -- the decoder
// never buffers the whole file -- and enqueues the paired flows as an
// async classification job on the batch queue. The response is the same
// 202 + job envelope POST /v1/batch uses; per-flow results appear in the
// job payload. ?model= selects the registry model.
func (s *Service) handlePcap(w http.ResponseWriter, r *http.Request) {
	s.metrics.pcapUploads.Add(1)
	modelName := r.URL.Query().Get("model")
	if _, err := s.registry.Get(modelName); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}

	// The same body bound every JSON endpoint enforces; the decoder reads
	// incrementally so only its one-block buffer is resident. The counting
	// wrapper feeds the ingest-throughput metrics (bytes over decode time).
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, maxBodyBytes)}
	decodeStart := time.Now()
	flows, stats, err := flow.Reassemble(body, flow.Config{})
	decodeSpan := time.Since(decodeStart)
	s.metrics.pcapBytes.Add(body.n.Load())
	s.metrics.pcapDecode.Observe(decodeSpan)
	s.metrics.pcapFlowsSeen.Add(stats.Flows)
	s.metrics.pcapFlowsClassifiable.Add(stats.Classifiable)
	if err != nil {
		s.metrics.pcapDecodeErrors.Add(1)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "%v", errBodyTooLarge)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding capture: %v", err)
		return
	}
	if stats.Flows == 0 {
		writeError(w, http.StatusBadRequest, "capture holds no TCP flows")
		return
	}

	pairs := flow.Pair(flows)
	j, err := s.enqueue(r.Context(), &job{
		model:      modelName,
		pcap:       pairs,
		total:      len(pairs),
		gatherSpan: decodeSpan,
	})
	if err != nil {
		if errors.Is(err, errQueueFull) {
			writeQueueFull(w, err)
			return
		}
		if errors.Is(err, errShuttingDown) {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, PcapAccepted{
		BatchAccepted: BatchAccepted{
			JobID:  j.id,
			Status: "/v1/jobs/" + j.id,
			Total:  len(pairs),
		},
		Stats: stats,
	})
}

// PcapAccepted is the POST /v1/pcap response: the async job envelope plus
// the capture's decode statistics (available immediately, unlike the
// classifications).
type PcapAccepted struct {
	BatchAccepted
	Stats flow.CaptureStats `json:"capture"`
}

// runPcap executes one accepted capture job: every flow pair is
// classified on the engine pool, streaming per-flow completions into the
// job's progress counter. Classification of reconstructed traces needs no
// probing, so capture jobs drain quickly even between long probe batches.
func (s *Service) runPcap(j *job) {
	model, err := s.registry.Get(j.model)
	if err != nil {
		j.fail(err.Error())
		s.metrics.jobsFailed.Add(1)
		return
	}
	version := model.Version()
	_ = flow.ClassifyAll(j.ctx, j.pcap, model.Identifier().Classifier(), flow.ClassifyOptions{
		Parallelism: s.cfg.Parallelism,
		Timings:     true,
		Telemetry:   &s.metrics.pipeline,
		GatherSpan:  j.gatherSpan,
		OnResult: func(i int) {
			resp := toFlowResponse(version, j.pcap[i])
			s.metrics.identifies.Add(1)
			s.metrics.countLabel(resp)
			j.complete(i, resp, false)
		},
	})
	// The pairs (cloned traces, endpoint strings) are only needed to fill
	// results; dropping them here keeps the finished-job retention window
	// from pinning whole captures' worth of dead flow state.
	j.pcap = j.pcap[:0:0]
	if err := j.ctx.Err(); err != nil {
		j.fail("cancelled: " + err.Error())
		s.metrics.jobsFailed.Add(1)
		return
	}
	j.finish()
	s.metrics.jobsCompleted.Add(1)
}

// toFlowResponse renders one classified flow pair on the wire: the shared
// identification envelope plus the flow-level metadata.
func toFlowResponse(modelVersion string, p flow.FlowIdentification) IdentifyResponse {
	resp := IdentifyResponse{
		Model:       modelVersion,
		Server:      p.A.Server,
		Valid:       p.ID.Valid,
		Wmax:        p.ID.Wmax,
		MSS:         p.ID.MSS,
		SimulatedMs: float64(p.ID.Elapsed) / float64(time.Millisecond),
		Text:        p.ID.String(),
	}
	switch {
	case !p.ID.Valid:
		resp.Reason = string(p.ID.Reason)
	case p.ID.Special != trace.SpecialNone:
		resp.Special = p.ID.Special.String()
	default:
		resp.Label = p.ID.Label
		resp.Confidence = p.ID.Confidence
		resp.Features = append([]float64(nil), p.ID.Vector.Slice()...)
	}
	info := &FlowInfo{
		ClientA:     p.A.Client,
		Packets:     p.A.Packets,
		Retransmits: p.A.Retransmits,
		RTTMs:       float64(p.A.RTT) / float64(time.Millisecond),
		Rounds:      p.A.Rounds,
		Start:       p.A.Start.UTC().Format(time.RFC3339Nano),
	}
	if p.B != nil {
		info.ClientB = p.B.Client
		info.Packets += p.B.Packets
		info.Retransmits += p.B.Retransmits
	}
	resp.Flow = info
	resp.Timings = stageTimingsMs(p.ID.Timings)
	return resp
}

// countingReader counts bytes pulled through it (atomically: handlers and
// the metrics scraper race).
type countingReader struct {
	r io.Reader
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// FlowInfo is the per-flow metadata attached to capture-job results.
type FlowInfo struct {
	// ClientA and ClientB are the client endpoints of the paired
	// environment A and B connections (B empty when unpaired).
	ClientA string `json:"client_a"`
	ClientB string `json:"client_b,omitempty"`
	// Packets and Retransmits cover the pair.
	Packets     int64 `json:"packets"`
	Retransmits int64 `json:"retransmits,omitempty"`
	// RTTMs is the A flow's RTT estimate in milliseconds.
	RTTMs float64 `json:"rtt_ms"`
	// Rounds is the number of reconstructed RTT rounds of the A flow.
	Rounds int `json:"rounds"`
	// Start is the A flow's first activity in the capture.
	Start string `json:"start"`
}
