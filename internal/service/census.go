package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/census"
	"repro/internal/census/shard"
	"repro/internal/netem"
)

// MaxCensusServers caps one census job's population. The full paper-scale
// study (63 124 servers) still fits; anything beyond it is an operator
// workload, not an API request.
const MaxCensusServers = 100_000

// censusState is the census payload of a job: the accepted request plus
// the live coordinator, published once the run starts so status polls can
// read progress and partial tables while probing is in flight.
type censusState struct {
	req   CensusRequest
	coord atomic.Pointer[shard.Coordinator]
}

// augment fills the census slice of a job status. Coordinator snapshots
// are safe concurrently with the run; the partial Table IV covers exactly
// the targets completed so far.
func (cs *censusState) augment(st *JobStatus) {
	c := cs.coord.Load()
	if c == nil {
		st.Census = &CensusStatus{}
		return
	}
	p := c.Progress()
	st.Completed = p.Completed
	out := &CensusStatus{Progress: p}
	if p.Completed > 0 {
		out.TableIV = c.Report().TableIV()
	}
	st.Census = out
}

// handleCensus accepts POST /v1/census: validate, enqueue on the shared
// job queue, answer 202 with the usual job envelope. Progress and the
// (partial) table are polled through GET /v1/jobs/{id}.
func (s *Service) handleCensus(w http.ResponseWriter, r *http.Request) {
	var req CensusRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	j, err := s.submitCensus(r.Context(), req)
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			writeQueueFull(w, err)
		case errors.Is(err, errShuttingDown):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, ErrNoModel):
			writeError(w, http.StatusNotFound, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, BatchAccepted{
		JobID:  j.id,
		Status: "/v1/jobs/" + j.id,
		Total:  j.total,
	})
}

// validateCensus rejects malformed census requests at submission time so
// they answer 400/404 instead of becoming failed jobs.
func (s *Service) validateCensus(req CensusRequest) error {
	if _, err := s.registry.Get(req.Model); err != nil {
		return err
	}
	if req.Servers <= 0 {
		return fmt.Errorf("census.servers must be positive")
	}
	if req.Servers > MaxCensusServers {
		return fmt.Errorf("census of %d servers exceeds the %d-server limit", req.Servers, MaxCensusServers)
	}
	if req.Workers < 0 || req.MaxAttempts < 0 || req.MaxDeferrals < 0 {
		return fmt.Errorf("census workers, max_attempts and max_deferrals must be non-negative")
	}
	if err := req.Fault.Validate(); err != nil {
		return err
	}
	return nil
}

// submitCensus validates and enqueues one census job.
func (s *Service) submitCensus(ctx context.Context, req CensusRequest) (*job, error) {
	if err := s.validateCensus(req); err != nil {
		s.metrics.batchRejected.Add(1)
		return nil, err
	}
	if req.Seed == 0 {
		req.Seed = 2011 // the paper-year default every command uses
	}
	j, err := s.enqueue(ctx, &job{
		model:  req.Model,
		census: &censusState{req: req},
		total:  req.Servers,
	})
	if err == nil {
		s.metrics.censusJobs.Add(1)
	}
	return j, err
}

// runCensus executes one accepted census job through the sharded
// coordinator, mirroring its counters into the service-wide census
// metrics sink so /metrics aggregates retry/backoff/steal behaviour
// across every campaign.
func (s *Service) runCensus(j *job) {
	model, err := s.registry.Get(j.model)
	if err != nil {
		j.fail(err.Error())
		s.metrics.jobsFailed.Add(1)
		return
	}
	req := j.census.req
	popCfg := census.DefaultPopulationConfig()
	popCfg.Servers = req.Servers
	popCfg.Seed = req.Seed + 77 // experiments.TableIV's derivation
	pop := census.GeneratePopulation(popCfg)

	coord, err := shard.New(pop, model.Identifier(), netem.MeasuredDatabase(), shard.Config{
		Workers:      req.Workers,
		Seed:         req.Seed + 99, // experiments.TableIV's probing seed
		Probe:        s.cfg.Probe,
		MaxAttempts:  req.MaxAttempts,
		MaxDeferrals: req.MaxDeferrals,
		Fault:        req.Fault,
		Metrics:      &s.metrics.census,
		Trace:        s.flight,
		TraceID:      j.trace,
	})
	if err != nil {
		// The request was validated at submission; only population-scale
		// misconfiguration could land here. Fail cleanly either way.
		j.fail(err.Error())
		s.metrics.jobsFailed.Add(1)
		return
	}
	j.census.coord.Store(coord)

	if err := coord.Run(j.ctx); err != nil {
		if j.ctx.Err() != nil {
			j.fail("cancelled: " + j.ctx.Err().Error())
		} else {
			j.fail(err.Error())
		}
		s.metrics.jobsFailed.Add(1)
		return
	}
	j.finish()
	s.metrics.jobsCompleted.Add(1)
}
