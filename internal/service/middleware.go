package service

import (
	"context"
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// traceCtxKey keys the per-request trace state in the request context.
type traceCtxKey struct{}

// traceState rides the request context from the trace middleware to the
// handlers: the trace identity (threaded into sessions, jobs, and stream
// pipelines) plus the outcome a handler classifies before the middleware
// finishes the trace. Only the request goroutine writes outcome (async
// executors classify their own job-completion trace instead), so a
// plain field suffices.
type traceState struct {
	id    telemetry.TraceID
	reqID string
	// outcome holds a telemetry.Outcome set by the handler; -1 = unset
	// (the middleware then infers error from a >=400 status).
	outcome int32
}

// traceFrom returns the request's trace state, or nil outside the
// middleware (direct handler tests, internal callers).
func traceFrom(ctx context.Context) *traceState {
	st, _ := ctx.Value(traceCtxKey{}).(*traceState)
	return st
}

// traceIDFrom returns the request's trace ID, or 0 when untraced (which
// turns every downstream recording call into a no-op).
func traceIDFrom(ctx context.Context) telemetry.TraceID {
	if st := traceFrom(ctx); st != nil {
		return st.id
	}
	return 0
}

// requestIDFrom returns the request's correlating ID ("" when untraced).
func requestIDFrom(ctx context.Context) string {
	if st := traceFrom(ctx); st != nil {
		return st.reqID
	}
	return ""
}

// setOutcome classifies the request for tail sampling. Handlers call it
// when they know better than the status code (an UNSURE identification
// is a 200 the recorder must keep).
func setOutcome(ctx context.Context, o telemetry.Outcome) {
	if st := traceFrom(ctx); st != nil {
		st.outcome = int32(o)
	}
}

// withTrace is the service's outermost middleware: it honors an inbound
// X-Request-ID (hashed to a trace ID, so proxies' IDs correlate) or
// mints one (the hex trace ID doubles as the request ID), echoes the ID
// on the response, threads the trace through the request context, and on
// completion hands the trace to the flight recorder's tail sampler.
// When cfg.AccessLog is set it also emits the one structured log line
// per request that -log-requests asks for -- same middleware, so the
// logged ID, the response header, and the trace key are one value.
func (s *Service) withTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		var tr telemetry.TraceID
		if reqID == "" {
			tr = s.flight.Mint()
			reqID = tr.String()
		} else {
			tr = telemetry.HashTraceID(reqID)
		}
		w.Header().Set("X-Request-ID", reqID)
		st := &traceState{id: tr, reqID: reqID, outcome: -1}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		// The mux stamps the matched pattern on the request it serves, so
		// the route must be read back from this copy, not from r.
		r2 := r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, st))
		next.ServeHTTP(rec, r2)
		dur := time.Since(start)
		route := r2.Pattern
		if route == "" {
			route = r.URL.Path
		}
		outcome := telemetry.OutcomeOK
		if st.outcome >= 0 {
			outcome = telemetry.Outcome(st.outcome)
		} else if rec.status >= 400 {
			outcome = telemetry.OutcomeError
		}
		s.flight.Finish(telemetry.TraceDone{
			ID:        tr,
			RequestID: reqID,
			Route:     route,
			Outcome:   outcome,
			Status:    rec.status,
			Start:     start,
			Duration:  dur,
		})
		if s.cfg.AccessLog != nil {
			s.cfg.AccessLog.Info("request",
				"id", reqID,
				"method", r.Method,
				"route", route,
				"status", rec.status,
				"duration_ms", float64(dur)/float64(time.Millisecond),
				"bytes", rec.bytes,
			)
		}
	})
}

// statusRecorder captures the response status and body size for the
// trace summary and the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	n, err := s.ResponseWriter.Write(p)
	s.bytes += int64(n)
	return n, err
}

// Unwrap lets http.NewResponseController reach the underlying writer's
// Flush/EnableFullDuplex (the NDJSON stream endpoint needs both).
func (s *statusRecorder) Unwrap() http.ResponseWriter { return s.ResponseWriter }
