// Package service turns the CAAI pipeline into a resident
// identification-as-a-service: an HTTP/JSON API layered on the engine
// worker pool. A Service loads trained models once (into a hot-swappable
// Registry), answers synchronous identifications on POST /v1/identify,
// runs large batches asynchronously through a bounded job queue feeding
// engine.IdentifyBatch (POST /v1/batch + GET /v1/jobs/{id}), memoizes
// results in an LRU keyed by (model version, server spec, condition
// fingerprint), and reports its own health and counters on GET /healthz
// and GET /metrics.
package service

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/telemetry"
	"repro/internal/websim"
	"repro/internal/xrand"
)

// Config tunes a Service. The zero value of every field is usable.
type Config struct {
	// CacheSize bounds the LRU result cache; 0 means DefaultCacheSize,
	// negative disables caching.
	CacheSize int
	// QueueSize bounds the pending async batch jobs AND the synchronous
	// /v1/identify backlog (requests parked waiting for a probe slot);
	// 0 means DefaultQueueSize. Submissions beyond either bound are shed
	// with 429 + Retry-After.
	QueueSize int
	// Workers is how many batch jobs execute concurrently; 0 means 1.
	// Each running job fans its probes out on the engine pool.
	Workers int
	// Parallelism bounds the engine pool per running batch and the number
	// of concurrent synchronous /v1/identify probes (excess sync requests
	// queue on a semaphore rather than saturating the CPU); 0 = all CPUs.
	Parallelism int
	// MaxBatchJobs caps the jobs accepted in one POST /v1/batch; 0 means
	// DefaultMaxBatchJobs.
	MaxBatchJobs int
	// JobRetention bounds how many finished (done/failed/cancelled) jobs
	// stay pollable: once exceeded, the oldest-finished jobs are dropped
	// and their IDs answer 404. Keeps a resident server's memory bounded
	// under steady batch traffic. <= 0 means DefaultJobRetention.
	JobRetention int
	// MaxStreams bounds concurrent POST /v1/pcap/stream uploads (each
	// runs its own sharded decode pipeline); excess requests are shed
	// with 429. 0 means DefaultMaxStreams.
	MaxStreams int
	// Probe customizes trace gathering (zero = paper defaults).
	Probe probe.Config
	// TraceSampleN keeps a deterministic 1-in-N of normal-outcome traces
	// in the flight recorder's retained store (errors/UNSURE/slow are
	// always kept): 0 means telemetry.DefaultTraceSampleN, 1 keeps all,
	// negative keeps none of the normal traffic.
	TraceSampleN int
	// TraceSlow is the latency past which every trace is retained
	// regardless of outcome; 0 means telemetry.DefaultTraceSlow.
	TraceSlow time.Duration
	// TraceRetain bounds the retained-trace store (FIFO); 0 means
	// telemetry.DefaultTraceRetain.
	TraceRetain int
	// AccessLog, when non-nil, makes the trace middleware emit one
	// structured log line per request (id, method, route, status,
	// duration, bytes) -- the -log-requests behaviour, now inside the
	// service so the logged ID is the trace key.
	AccessLog *slog.Logger
}

// Service defaults.
const (
	DefaultCacheSize    = 4096
	DefaultQueueSize    = 64
	DefaultMaxBatchJobs = 10_000
	DefaultJobRetention = 256
	DefaultMaxStreams   = 4

	// Trace defaults re-exported so flag registration (cmd/caai-serve)
	// need not import internal/telemetry.
	DefaultTraceSampleN = telemetry.DefaultTraceSampleN
	DefaultTraceSlow    = telemetry.DefaultTraceSlow
)

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.QueueSize <= 0 {
		c.QueueSize = DefaultQueueSize
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxBatchJobs <= 0 {
		c.MaxBatchJobs = DefaultMaxBatchJobs
	}
	if c.JobRetention <= 0 {
		c.JobRetention = DefaultJobRetention
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = DefaultMaxStreams
	}
	return c
}

// Service is a resident identification server. Create with New, wire
// Handler into an http.Server, and Close on shutdown.
type Service struct {
	cfg      Config
	registry *Registry
	cache    *resultCache
	metrics  *metrics
	// flight is the always-on trace recorder: every request's spans land
	// in its rings, tail sampling at completion decides which traces the
	// /v1/traces surface can still read back.
	flight *telemetry.Flight

	queue chan *job
	// syncSem bounds concurrent synchronous-path probes at
	// cfg.Parallelism, mirroring the engine pool bound on the batch path.
	syncSem chan struct{}
	// syncWaiting counts sync requests parked on (or acquiring) syncSem.
	// Bounded at cfg.QueueSize: past that, /v1/identify sheds load with
	// errQueueFull instead of stacking goroutines without limit.
	syncWaiting atomic.Int64
	// streamSem bounds concurrent capture-stream pipelines at
	// cfg.MaxStreams; acquisition is non-blocking (shed, don't park).
	streamSem chan struct{}

	// inflight coalesces concurrent identical sync identifications: the
	// first request probes, later ones wait for its result instead of
	// repeating the same deterministic work.
	inflightMu sync.Mutex
	inflight   map[string]*inflightCall

	jobMu    sync.Mutex
	jobs     map[string]*job
	finished []string // terminal job IDs, oldest first (retention queue)
	nextJob  int64

	// evalSummary holds the latest scenario-matrix evaluation summary
	// (see internal/eval), exposed through GET /metrics so operators see
	// the accuracy posture of the serving model next to its traffic
	// counters. The stored value is immutable after Set.
	evalMu      sync.RWMutex
	evalSummary *eval.Summary

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// closeMu orders submissions against Close: submit enqueues under the
	// read lock, Close flips closed under the write lock, so every
	// accepted job is in the queue before the workers begin draining and
	// none can be stranded in "queued" by a racing shutdown.
	closeMu sync.RWMutex
	closed  bool
}

// New starts a Service answering with reg's models: cfg.Workers executor
// goroutines begin draining the batch queue immediately.
func New(reg *Registry, cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	syncWidth := cfg.Parallelism
	if syncWidth <= 0 {
		syncWidth = engine.DefaultParallelism()
	}
	s := &Service{
		cfg:      cfg,
		registry: reg,
		cache:    newResultCache(cfg.CacheSize),
		metrics:  newMetrics(),
		flight: telemetry.NewFlight(telemetry.FlightConfig{
			SampleN: cfg.TraceSampleN,
			Slow:    cfg.TraceSlow,
			Retain:  cfg.TraceRetain,
		}),
		queue:     make(chan *job, cfg.QueueSize),
		syncSem:   make(chan struct{}, syncWidth),
		streamSem: make(chan struct{}, cfg.MaxStreams),
		inflight:  map[string]*inflightCall{},
		jobs:      map[string]*job{},
		ctx:       ctx,
		cancel:    cancel,
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry exposes the model registry (for reload tooling).
func (s *Service) Registry() *Registry { return s.registry }

// SetEvalSummary installs the latest scenario-matrix evaluation summary
// for GET /metrics (typically the newest ACCURACY_<n>.json point, loaded
// at startup by cmd/caai-serve -eval). The summary is copied; callers may
// keep mutating their value.
func (s *Service) SetEvalSummary(sum eval.Summary) {
	cp := sum
	cp.ScenarioAccuracy = make(map[string]float64, len(sum.ScenarioAccuracy))
	for k, v := range sum.ScenarioAccuracy {
		cp.ScenarioAccuracy[k] = v
	}
	s.evalMu.Lock()
	s.evalSummary = &cp
	s.evalMu.Unlock()
}

// latestEvalSummary returns the installed summary pointer (immutable), or
// nil when none was set.
func (s *Service) latestEvalSummary() *eval.Summary {
	s.evalMu.RLock()
	defer s.evalMu.RUnlock()
	return s.evalSummary
}

// Close stops the batch executors and cancels running jobs. In-flight
// probes finish; queued jobs are marked failed. Safe to call twice.
func (s *Service) Close() {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	s.cancel()
	s.wg.Wait()
	s.flight.Close()
}

// Traces exposes the flight recorder (read-only surface for tooling and
// tests; the HTTP handlers go through it too).
func (s *Service) Traces() *telemetry.Flight { return s.flight }

// identify answers one job spec against the named model, consulting the
// result cache first. It is the shared core of the synchronous endpoint
// and the batch executor. ctx aborts waiting (on the singleflight leader
// or the semaphore) when the caller has gone away, so abandoned requests
// stop occupying probe slots.
func (s *Service) identify(ctx context.Context, modelName string, spec JobSpec) (IdentifyResponse, error) {
	model, err := s.registry.Get(modelName)
	if err != nil {
		return IdentifyResponse{}, err
	}
	spec = spec.normalize()
	// Validate before consulting the cache so rejected requests do not
	// skew the hit-rate counters.
	server, err := spec.Server.build()
	if err != nil {
		return IdentifyResponse{}, err
	}
	cond, err := spec.Condition.build()
	if err != nil {
		return IdentifyResponse{}, err
	}
	key := model.Version() + "|" + spec.fingerprint()

	// Span recording for the service-side stages: cache is the first
	// lookup's cost, queue_wait the time from then until a probe slot is
	// held (singleflight waits included -- that IS the queueing a coalesced
	// request experiences).
	tr := traceIDFrom(ctx)
	var clock telemetry.SpanClock
	var tm telemetry.StageTimings
	cacheStart := time.Now()
	clock.StartAt(cacheStart)
	firstLookup := true

	// Singleflight: identification is deterministic per key, so concurrent
	// identical requests share one probe. Followers count as cache hits
	// (they are served from memory); only the leader counts a miss. A
	// leader that aborts before probing (context cancelled at the
	// semaphore) closes done without a result; waiting followers then loop
	// and elect a new leader.
	var c *inflightCall
	for {
		resp, ok := s.cache.Get(key)
		if firstLookup {
			clock.Lap(&tm, telemetry.StageCache)
			s.metrics.pipeline.Observe(telemetry.StageCache, tm[telemetry.StageCache])
			s.flight.Span(tr, telemetry.StageCache, cacheStart, tm[telemetry.StageCache], 0)
			firstLookup = false
		}
		if ok {
			s.metrics.cacheHits.Add(1)
			s.flight.Event(tr, telemetry.EventCacheHit, 0)
			resp.Cached = true
			return resp, nil
		}
		s.inflightMu.Lock()
		if lead, inFlight := s.inflight[key]; inFlight {
			s.inflightMu.Unlock()
			select {
			case <-lead.done:
			case <-ctx.Done():
				return IdentifyResponse{}, ctx.Err()
			}
			if !lead.ok {
				continue // leader aborted without probing; try again
			}
			s.metrics.cacheHits.Add(1)
			s.flight.Event(tr, telemetry.EventCacheHit, 0)
			resp := lead.resp
			resp.Cached = true
			return resp, nil
		}
		c = &inflightCall{done: make(chan struct{})}
		s.inflight[key] = c
		s.inflightMu.Unlock()
		break
	}
	defer func() {
		s.inflightMu.Lock()
		delete(s.inflight, key)
		s.inflightMu.Unlock()
		close(c.done)
	}()

	// Backlog bound: every probe slot busy plus QueueSize callers already
	// parked means this request would only deepen the pile-up. Shedding it
	// now (429 upstream) keeps sync latency honest under overload.
	if n := s.syncWaiting.Add(1); n > int64(s.cfg.QueueSize) {
		s.syncWaiting.Add(-1)
		s.metrics.syncRejected.Add(1)
		return IdentifyResponse{}, errQueueFull
	}
	select {
	case s.syncSem <- struct{}{}:
	case <-ctx.Done():
		s.syncWaiting.Add(-1)
		return IdentifyResponse{}, ctx.Err()
	}
	s.syncWaiting.Add(-1)
	defer func() { <-s.syncSem }()
	clock.Lap(&tm, telemetry.StageQueueWait)
	s.metrics.pipeline.Observe(telemetry.StageQueueWait, tm[telemetry.StageQueueWait])
	wait := tm[telemetry.StageQueueWait]
	s.flight.Span(tr, telemetry.StageQueueWait, time.Now().Add(-wait), wait, 0)
	s.metrics.cacheMisses.Add(1)
	s.flight.Event(tr, telemetry.EventCacheMiss, 0)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)
	rng := xrand.New(spec.Seed)
	// Sessions recycle probe and feature scratch across requests; the pool
	// guarantees exclusive use for the duration of the probe. Span
	// recording stays on for the session's lifetime (idempotent re-enable);
	// the trace binding is rebound every request (pooled sessions).
	sess := model.acquireSession()
	sess.EnableTimings(&s.metrics.pipeline)
	sess.BindTrace(s.flight, tr)
	id := sess.Identify(server, cond, s.cfg.Probe, rng)
	model.releaseSession(sess)
	// Fold the service-side spans into the result's breakdown so the wire
	// timings cover the whole request, not just the pipeline core.
	id.Timings[telemetry.StageQueueWait] = tm[telemetry.StageQueueWait]
	id.Timings[telemetry.StageCache] = tm[telemetry.StageCache]
	s.metrics.identifies.Add(1)
	resp := toResponse(model.Version(), server.Name, id)
	s.metrics.countLabel(resp)
	s.cache.Put(key, resp)
	c.resp, c.ok = resp, true
	return resp, nil
}

// inflightCall is one in-progress identification shared by coalesced
// requests: done closes once the leader finishes. ok distinguishes a
// result from a leader that aborted before probing.
type inflightCall struct {
	done chan struct{}
	resp IdentifyResponse
	ok   bool
}

// countingIdentifier wraps a pipeline identifier (shared or per-worker
// session) so the in_flight gauge counts individual probes on the batch
// path, the same unit the synchronous path reports.
type countingIdentifier struct {
	id engine.Identifier[core.Identification]
	m  *metrics
}

func (c countingIdentifier) Identify(server *websim.Server, cond netem.Condition, cfg probe.Config, rng *rand.Rand) core.Identification {
	c.m.inFlight.Add(1)
	defer c.m.inFlight.Add(-1)
	return c.id.Identify(server, cond, cfg, rng)
}

// countingBlock is countingIdentifier for the block-inference path: the
// gauge brackets each probe (the long-running unit), not the flush. It
// also stamps the job's trace with a shard-assignment event per gathered
// probe (arg packs worker<<32 | job tag), so a span tree shows which
// engine worker ran which sample.
type countingBlock struct {
	bs     engine.BlockIdentifier[core.Identification]
	m      *metrics
	flight *telemetry.Flight
	trace  telemetry.TraceID
	worker int
}

func (c countingBlock) Gather(tag int, server *websim.Server, cond netem.Condition, cfg probe.Config, rng *rand.Rand) {
	c.m.inFlight.Add(1)
	defer c.m.inFlight.Add(-1)
	c.flight.Event(c.trace, telemetry.EventShardAssign, uint64(c.worker)<<32|uint64(tag)&0xffffffff)
	c.bs.Gather(tag, server, cond, cfg, rng)
}

func (c countingBlock) Buffered() int { return c.bs.Buffered() }

func (c countingBlock) Flush(emit func(tag int, out core.Identification)) { c.bs.Flush(emit) }

// validateBatch resolves the model and pre-validates every job spec so a
// malformed batch is rejected at submission time, not mid-run.
func (s *Service) validateBatch(req BatchRequest) error {
	if len(req.Jobs) == 0 {
		return fmt.Errorf("batch needs at least one job")
	}
	if len(req.Jobs) > s.cfg.MaxBatchJobs {
		return fmt.Errorf("batch of %d jobs exceeds the %d-job limit", len(req.Jobs), s.cfg.MaxBatchJobs)
	}
	if _, err := s.registry.Get(req.Model); err != nil {
		return err
	}
	for i, j := range req.Jobs {
		if _, err := j.Server.build(); err != nil {
			return fmt.Errorf("job %d: %v", i, err)
		}
		if _, err := j.Condition.build(); err != nil {
			return fmt.Errorf("job %d: %v", i, err)
		}
	}
	return nil
}

// runBatch executes one accepted batch job: cached specs are answered
// from memory, the rest coalesce into inference blocks through
// engine.IdentifyBatch on the worker pool, streaming completions into the
// job's progress counter one block at a time.
func (s *Service) runBatch(j *job) {
	model, err := s.registry.Get(j.model)
	if err != nil {
		// The model was validated at submission; it can only vanish if the
		// registry shrank since, which Registry does not support -- but
		// fail the job cleanly rather than panic if that ever changes.
		j.fail(err.Error())
		s.metrics.jobsFailed.Add(1)
		return
	}
	version := model.Version()

	// Partition into cache hits (answered immediately) and misses, and
	// coalesce identical misses: results are deterministic per key, so N
	// copies of one spec in a batch cost one probe, fanned out to all N
	// slots when it completes (duplicates count as cache hits, like the
	// sync path's singleflight followers). Known trade-off: the batch
	// prepass reads only the cache, not the sync path's in-flight map, so
	// a batch racing a concurrent identical /v1/identify probe can repeat
	// that one probe -- a bounded duplication we accept to keep the batch
	// executor from blocking on sync traffic.
	type missGroup struct {
		key      string
		specIdxs []int
	}
	var groups []missGroup
	groupOf := map[string]int{}
	engineJobs := make([]engine.Job, 0, len(j.specs))
	for i, raw := range j.specs {
		spec := raw.normalize()
		key := version + "|" + spec.fingerprint()
		if resp, ok := s.cache.Get(key); ok {
			s.metrics.cacheHits.Add(1)
			resp.Cached = true
			j.complete(i, resp, true)
			continue
		}
		if gi, dup := groupOf[key]; dup {
			groups[gi].specIdxs = append(groups[gi].specIdxs, i)
			continue
		}
		s.metrics.cacheMisses.Add(1)
		groupOf[key] = len(groups)
		groups = append(groups, missGroup{key: key, specIdxs: []int{i}})
		server, _ := spec.Server.build()  // validated at submission
		cond, _ := spec.Condition.build() // validated at submission
		engineJobs = append(engineJobs, engine.Job{Server: server, Cond: cond, Seed: spec.Seed})
	}

	if len(engineJobs) > 0 {
		// Coalesced misses run as block inference: each pool worker gathers
		// its probes into a block session and the model classifies whole
		// blocks at once. The synchronous /v1/identify path stays scalar --
		// a single interactive request should never wait for a block to
		// fill (and with one vector there is nothing to batch).
		id := countingIdentifier{id: model.Identifier(), m: s.metrics}
		workerSeq := 0 // NewWorkerBlock is called sequentially by the engine
		engine.IdentifyBatch[core.Identification](id, engineJobs, engine.BatchConfig[core.Identification]{
			Ctx:         j.ctx,
			Parallelism: s.cfg.Parallelism,
			Probe:       s.cfg.Probe,
			NewWorkerBlock: func() engine.BlockIdentifier[core.Identification] {
				bs := model.Identifier().NewBlockSession()
				bs.EnableTimings(&s.metrics.pipeline)
				bs.BindTrace(s.flight, j.trace)
				w := workerSeq
				workerSeq++
				return countingBlock{bs: bs, m: s.metrics, flight: s.flight, trace: j.trace, worker: w}
			},
			OnResult: func(r engine.Result[core.Identification]) {
				g := groups[r.Index]
				resp := toResponse(version, r.Job.Server.Name, r.Out)
				s.metrics.identifies.Add(1)
				s.metrics.countLabel(resp)
				s.cache.Put(g.key, resp)
				j.complete(g.specIdxs[0], resp, false)
				resp.Cached = true
				for _, si := range g.specIdxs[1:] {
					s.metrics.cacheHits.Add(1)
					j.complete(si, resp, true)
				}
			},
		})
	}

	if err := j.ctx.Err(); err != nil {
		j.fail("cancelled: " + err.Error())
		s.metrics.jobsFailed.Add(1)
		return
	}
	j.finish()
	s.metrics.jobsCompleted.Add(1)
}
