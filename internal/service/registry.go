package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
)

// Model is one immutable entry of the Registry: a trained classifier
// wrapped in a ready identifier, tagged with a version. Reloading a name
// installs a fresh *Model; requests that already resolved the old pointer
// finish against it, so swaps are atomic and downtime-free.
type Model struct {
	// Name is the registry key.
	Name string
	// Generation counts swaps of this name, starting at 1.
	Generation int
	// Backend is the classifier backend name (e.g. "randomforest").
	Backend string
	// Path is the model file the entry was loaded from; empty for
	// classifiers installed in-process with Registry.Add.
	Path string
	// LoadedAt is when the entry was installed.
	LoadedAt time.Time

	identifier *core.Identifier
	// sessions pools reusable pipeline sessions (probe + feature scratch)
	// for the synchronous identify path; they die with the entry on swap.
	sessions sync.Pool
}

// Version renders the cache-key version tag ("name@generation").
func (m *Model) Version() string { return fmt.Sprintf("%s@%d", m.Name, m.Generation) }

// Identifier returns the ready pipeline identifier.
func (m *Model) Identifier() *core.Identifier { return m.identifier }

// acquireSession checks a reusable pipeline session out of the model's
// pool; pair with releaseSession. Sessions are single-goroutine; the pool
// guarantees exclusive use between the two calls.
func (m *Model) acquireSession() *core.Session {
	return m.sessions.Get().(*core.Session)
}

func (m *Model) releaseSession(s *core.Session) { m.sessions.Put(s) }

// Registry holds the named models a Service answers requests with. The
// first model registered becomes the default (served when a request names
// no model). Safe for concurrent use.
type Registry struct {
	mu          sync.RWMutex
	models      map[string]*Model
	defaultName string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: map[string]*Model{}}
}

// install swaps in a fully built entry under name, bumping its
// generation. Path is taken as given: swapping a file-backed name with an
// in-process classifier (Add) clears the backing file, so a later Reload
// cannot silently resurrect the old on-disk model over it.
func (r *Registry) install(name, path string, c classify.Classifier) *Model {
	r.mu.Lock()
	defer r.mu.Unlock()
	gen := 1
	if prev, ok := r.models[name]; ok {
		gen = prev.Generation + 1
	}
	m := &Model{
		Name:       name,
		Generation: gen,
		Backend:    c.Name(),
		Path:       path,
		LoadedAt:   time.Now(),
		identifier: core.NewIdentifier(c),
	}
	m.sessions.New = func() any { return m.identifier.NewSession() }
	r.models[name] = m
	if r.defaultName == "" {
		r.defaultName = name
	}
	return m
}

// Add installs an in-process trained classifier under name (no backing
// file, so Reload skips it). Re-adding a name hot-swaps it.
func (r *Registry) Add(name string, c classify.Classifier) *Model {
	return r.install(name, "", c)
}

// Load reads a model file saved with classify.Save and installs it under
// name. The new entry is built entirely before the swap: a load error
// leaves the currently served model untouched.
func (r *Registry) Load(name, path string) (*Model, error) {
	c, err := classify.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("service: loading model %q: %w", name, err)
	}
	return r.install(name, path, c), nil
}

// ErrNoModel marks a lookup of an unregistered model name (mapped to
// 404 by the HTTP handlers; match with errors.Is).
var ErrNoModel = errors.New("no such model")

// Get resolves a model by name; the empty name resolves to the default
// (first-registered) model.
func (r *Registry) Get(name string) (*Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.defaultName
	}
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("service: %w: %q (have %v)", ErrNoModel, name, r.namesLocked())
	}
	return m, nil
}

// ReloadOne re-reads the named model from the file it was loaded from and
// hot-swaps it. In-process models (no backing file) cannot be reloaded.
func (r *Registry) ReloadOne(name string) (*Model, error) {
	m, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	if m.Path == "" {
		return nil, fmt.Errorf("service: model %q has no backing file to reload", m.Name)
	}
	return r.Load(m.Name, m.Path)
}

// Reload re-reads every file-backed model from disk and hot-swaps the
// entries that load cleanly. It returns the refreshed models; a load
// failure keeps the old entry serving and is reported in err (joined
// across models) without aborting the remaining reloads.
func (r *Registry) Reload() ([]*Model, error) {
	r.mu.RLock()
	type target struct{ name, path string }
	var targets []target
	for name, m := range r.models {
		if m.Path != "" {
			targets = append(targets, target{name, m.Path})
		}
	}
	r.mu.RUnlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].name < targets[j].name })

	var out []*Model
	var errs []error
	for _, t := range targets {
		m, err := r.Load(t.name, t.path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		out = append(out, m)
	}
	return out, errors.Join(errs...)
}

// Names lists the registered model names, sorted, default first.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	out := make([]string, 0, len(r.models))
	for name := range r.models {
		if name != r.defaultName {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	if r.defaultName != "" {
		out = append([]string{r.defaultName}, out...)
	}
	return out
}

// Snapshot returns the current entries, default first then sorted by name.
func (r *Registry) Snapshot() []*Model {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Model, 0, len(r.models))
	for _, name := range r.namesLocked() {
		out = append(out, r.models[name])
	}
	return out
}

// Len reports how many models are registered.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
