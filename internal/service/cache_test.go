package service

import (
	"fmt"
	"testing"
)

func TestCacheHitAndMiss(t *testing.T) {
	c := newResultCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", IdentifyResponse{Label: "RENO"})
	got, ok := c.Get("a")
	if !ok || got.Label != "RENO" {
		t.Fatalf("Get(a) = %+v, %v", got, ok)
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), IdentifyResponse{Wmax: i})
	}
	// Touch k0 so k1 becomes the eviction candidate.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k3", IdentifyResponse{Wmax: 3})
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived eviction despite being least recently used")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.Len())
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", IdentifyResponse{Wmax: 1})
	c.Put("a", IdentifyResponse{Wmax: 2})
	if c.Len() != 1 {
		t.Fatalf("duplicate Put grew the cache to %d entries", c.Len())
	}
	got, _ := c.Get("a")
	if got.Wmax != 2 {
		t.Fatalf("Get(a).Wmax = %d, want the updated value 2", got.Wmax)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Put("a", IdentifyResponse{})
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestJobSpecFingerprintNormalizes(t *testing.T) {
	// Defaults and explicit values that mean the same thing must share a
	// cache key.
	a := JobSpec{Server: ServerSpec{Algorithm: "RENO"}}
	b := JobSpec{
		Server:    ServerSpec{Algorithm: "RENO", Name: "testbed-RENO"},
		Condition: ConditionSpec{MeanRTTMs: 50},
		Seed:      1,
	}
	if a.fingerprint() != b.fingerprint() {
		t.Fatalf("equivalent specs fingerprint differently:\n%s\n%s", a.fingerprint(), b.fingerprint())
	}
	c := JobSpec{Server: ServerSpec{Algorithm: "RENO"}, Seed: 2}
	if a.fingerprint() == c.fingerprint() {
		t.Fatal("different seeds share a fingerprint")
	}
	d := JobSpec{Server: ServerSpec{Algorithm: "RENO"}, Condition: ConditionSpec{LossRate: 0.01}}
	if a.fingerprint() == d.fingerprint() {
		t.Fatal("different conditions share a fingerprint")
	}
}
