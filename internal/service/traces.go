package service

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// handleTraces answers GET /v1/traces: retained-trace summaries, newest
// first. Query parameters narrow the listing:
//
//	?outcome=unsure          one of ok/unsure/special/invalid/error
//	?route=POST+/v1/identify exact matched-route pattern
//	?min_duration_ms=250     only traces at least this slow
//	?limit=20                cap the result count
func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	fl := telemetry.TraceFilter{
		Outcome: q.Get("outcome"),
		Route:   q.Get("route"),
	}
	if fl.Outcome != "" {
		if _, ok := telemetry.ParseOutcome(fl.Outcome); !ok {
			writeError(w, http.StatusBadRequest, "outcome: want one of ok/unsure/special/invalid/error, got %q", fl.Outcome)
			return
		}
	}
	if v := q.Get("min_duration_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "min_duration_ms: want a non-negative number, got %q", v)
			return
		}
		fl.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit: want a non-negative integer, got %q", v)
			return
		}
		fl.Limit = n
	}
	// Read-your-writes: a request finished just before this poll may
	// still sit in the collector's queue; the barrier makes it visible.
	s.flight.Drain()
	writeJSON(w, http.StatusOK, map[string]any{
		"traces": s.flight.List(fl),
	})
}

// handleTrace answers GET /v1/traces/{id} with the full span tree of one
// retained trace. The key is the X-Request-ID the client saw: a minted
// 16-hex ID or its own supplied value (hashed the same way the boundary
// hashed it).
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("id")
	t, ok := s.flight.Lookup(key)
	if !ok {
		// The trace may have finished milliseconds ago and still be in
		// flight to the retained store; drain once before giving up.
		s.flight.Drain()
		t, ok = s.flight.Lookup(key)
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no retained trace %q (dropped by tail sampling, evicted, or never seen)", key)
		return
	}
	writeJSON(w, http.StatusOK, t)
}
