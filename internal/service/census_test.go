package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/census"
	"repro/internal/netem"
)

// censusBody is the canonical happy-path census request the tests vary.
func censusBody(servers int, seed int64) map[string]any {
	return map[string]any{"servers": servers, "seed": seed, "workers": 3}
}

// waitForCensusDone polls the job endpoint until the census reaches a
// terminal state, returning the final status.
func waitForCensusDone(t *testing.T, ts *httptestURL, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts.base+"/v1/jobs/"+id, &st)
		switch st.State {
		case StateDone:
			return st
		case StateFailed, StateCancelled:
			t.Fatalf("census job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("census job stuck in %s (%d/%d)", st.State, st.Completed, st.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// httptestURL lets the poll helper take just the base URL.
type httptestURL struct{ base string }

func TestCensusEndToEndMatchesDirectRun(t *testing.T) {
	s, ts := newTestService(t, Config{}, &fakeClassifier{Label: "RENO", Confidence: 0.9})

	resp, data := postJSON(t, ts.URL+"/v1/census", censusBody(60, 5))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Total != 60 {
		t.Fatalf("accepted total = %d, want 60", acc.Total)
	}
	st := waitForCensusDone(t, &httptestURL{ts.URL}, acc.JobID)
	if st.Census == nil {
		t.Fatal("done census job has no census status")
	}
	if st.Census.Progress.Completed != 60 || st.Completed != 60 {
		t.Fatalf("completed = %d/%d, want 60", st.Census.Progress.Completed, st.Completed)
	}
	if st.Census.TableIV == "" {
		t.Fatal("done census job has no Table IV")
	}

	// The job must reproduce a direct census.Run with the same seed
	// derivation bit for bit: the sharded coordinator, retries and all, is
	// outcome-equivalent to the sequential runner when no faults fire.
	model, err := s.registry.Get("default")
	if err != nil {
		t.Fatal(err)
	}
	popCfg := census.DefaultPopulationConfig()
	popCfg.Servers = 60
	popCfg.Seed = 5 + 77
	pop := census.GeneratePopulation(popCfg)
	direct := census.Run(pop, model.Identifier(), netem.MeasuredDatabase(), census.RunConfig{Seed: 5 + 99})
	if got, want := st.Census.TableIV, direct.TableIV(); got != want {
		t.Fatalf("service census table diverged from census.Run:\n--- service\n%s\n--- direct\n%s", got, want)
	}

	// The campaign's counters reached the process-wide snapshot.
	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Census.Jobs != 1 {
		t.Fatalf("census jobs = %d, want 1", snap.Census.Jobs)
	}
	if snap.Census.Probes != 60 {
		t.Fatalf("census probes = %d, want 60", snap.Census.Probes)
	}
	if snap.Census.Attempts.Count != 60 {
		t.Fatalf("attempt histogram count = %d, want 60", snap.Census.Attempts.Count)
	}
}

func TestCensusChaosAbandonmentAndTelemetry(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "RENO", Confidence: 0.9})

	body := censusBody(80, 11)
	body["max_attempts"] = 2
	body["max_deferrals"] = 2
	body["fault"] = map[string]any{
		"seed":             9,
		"probe_error_rate": 0.25,
		"rate_limit_rate":  0.15,
		"unreachable_rate": 0.1,
	}
	resp, data := postJSON(t, ts.URL+"/v1/census", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	st := waitForCensusDone(t, &httptestURL{ts.URL}, acc.JobID)
	p := st.Census.Progress
	if p.Completed != 80 {
		t.Fatalf("completed = %d, want 80", p.Completed)
	}
	if p.TargetsAbandoned == 0 || p.Retries == 0 || p.Deferrals == 0 {
		t.Fatalf("chaos run shows no fault handling: %+v", p)
	}
	if p.BackoffSeconds <= 0 {
		t.Fatalf("chaos run accumulated no backoff: %+v", p)
	}
	// Abandoned targets land in the report's invalid accounting with
	// their abandonment reason, visible in the rendered table.
	if !strings.Contains(st.Census.TableIV, "abandoned:") {
		t.Fatalf("Table IV lacks abandonment reasons:\n%s", st.Census.TableIV)
	}

	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Census.TargetsAbandoned == 0 || snap.Census.Retries == 0 {
		t.Fatalf("census metrics missed the chaos campaign: %+v", snap.Census)
	}
	if snap.Census.BackoffSeconds <= 0 {
		t.Fatalf("census backoff seconds = %v, want > 0", snap.Census.BackoffSeconds)
	}
}

func TestCensusPrometheusExposition(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "RENO", Confidence: 0.9})

	resp, data := postJSON(t, ts.URL+"/v1/census", censusBody(30, 3))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	waitForCensusDone(t, &httptestURL{ts.URL}, acc.JobID)

	r, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var b strings.Builder
	if _, err := io.Copy(&b, r.Body); err != nil {
		t.Fatal(err)
	}
	prom := b.String()
	// A fault-free 30-target campaign: exact golden samples.
	for _, want := range []string{
		"caai_census_jobs_total 1",
		"caai_census_probes_total 30",
		"caai_census_retries_total 0",
		"caai_census_targets_abandoned_total 0",
		"caai_census_worker_crashes_total 0",
		"# TYPE caai_census_attempts histogram",
		`caai_census_attempts_bucket{le="0"} 0`,
		`caai_census_attempts_bucket{le="1"} 30`,
		`caai_census_attempts_bucket{le="+Inf"} 30`,
		"caai_census_attempts_sum 30",
		"caai_census_attempts_count 30",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("census exposition missing %q", want)
		}
	}
}

func TestCensusValidation(t *testing.T) {
	_, ts := newTestService(t, Config{}, &fakeClassifier{Label: "RENO", Confidence: 0.9})

	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"zero servers", map[string]any{"servers": 0}, http.StatusBadRequest},
		{"oversized", map[string]any{"servers": MaxCensusServers + 1}, http.StatusBadRequest},
		{"negative workers", map[string]any{"servers": 10, "workers": -1}, http.StatusBadRequest},
		{"unknown model", map[string]any{"servers": 10, "model": "nope"}, http.StatusNotFound},
		{"bad fault plan", map[string]any{
			"servers": 10,
			"fault":   map[string]any{"probe_error_rate": 2.0},
		}, http.StatusBadRequest},
		{"unknown field", map[string]any{"servers": 10, "bogus": true}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.URL+"/v1/census", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, data)
		}
	}
}

func TestCensusQueueFullRejectsWith429(t *testing.T) {
	gate := make(chan struct{})
	model := &fakeClassifier{Label: "RENO", Confidence: 1, gate: gate}
	s, ts := newTestService(t, Config{Workers: 1, QueueSize: 1, Parallelism: 1}, model)
	defer close(gate)

	// Occupy the single worker with a gated batch job, then fill the
	// one-slot queue.
	one := map[string]any{"jobs": []map[string]any{{"server": map[string]any{"algorithm": "RENO"}}}}
	resp, data := postJSON(t, ts.URL+"/v1/batch", one)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d (%s)", resp.StatusCode, data)
	}
	var first BatchAccepted
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, first.JobID, StateRunning, 10*time.Second)
	if resp, _ = postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"jobs": []map[string]any{{"server": map[string]any{"algorithm": "RENO"}, "seed": 2}},
	}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}

	resp, data = postJSON(t, ts.URL+"/v1/census", censusBody(10, 1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("census overflow: %d (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
}

func TestIdentifyBacklogShedsWith429(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	model := &fakeClassifier{Label: "RENO", Confidence: 1, gate: gate, started: started}
	s, ts := newTestService(t, Config{Parallelism: 1, QueueSize: 2}, model)
	releaseGate := sync.OnceFunc(func() { close(gate) })
	t.Cleanup(releaseGate)

	// Leader: holds the single probe slot, provably inside Classify.
	codes := make(chan int, 8)
	post := func(seed int64) {
		resp, _ := postJSON(t, ts.URL+"/v1/identify", identifyBody("RENO", seed))
		codes <- resp.StatusCode
	}
	go post(1)
	<-started

	// Two more distinct requests park on the semaphore, filling the
	// QueueSize=2 sync backlog.
	go post(2)
	go post(3)
	deadline := time.Now().Add(10 * time.Second)
	for s.syncWaiting.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("sync backlog never filled (waiting=%d)", s.syncWaiting.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// The next distinct request must be shed, not parked.
	resp, data := postJSON(t, ts.URL+"/v1/identify", identifyBody("RENO", 4))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backlog overflow: %d (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}

	// Release everything: the parked requests complete normally.
	releaseGate()
	for i := 0; i < 3; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("parked request %d finished %d", i, code)
		}
	}

	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.SyncRejected != 1 {
		t.Fatalf("sync_rejected = %d, want 1", snap.SyncRejected)
	}
}
