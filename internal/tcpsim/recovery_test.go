package tcpsim

import (
	"testing"
	"time"

	"repro/internal/cc"
)

// growTo drives s with clean in-order ACKs until a burst reaches target,
// returning that burst and the current time.
func growTo(t *testing.T, s *Sender, target int) ([]Segment, time.Duration) {
	t.Helper()
	now := time.Duration(0)
	for r := int64(1); r < 32; r++ {
		burst := s.SendBurst(now)
		if len(burst) >= target {
			return burst, now
		}
		if len(burst) == 0 {
			t.Fatal("sender stalled")
		}
		s.BeginRound(r)
		for _, seg := range burst {
			s.DeliverAck(now+rtt, seg.ID+1, rtt)
		}
		now += rtt
	}
	t.Fatal("window never grew")
	return nil, 0
}

// tripleDup delivers an advancing ACK up to hole, then three duplicates.
func tripleDup(s *Sender, now time.Duration, hole int64, round int64) {
	s.BeginRound(round)
	s.DeliverAck(now, hole, rtt)
	for i := 0; i < 3; i++ {
		s.DeliverAck(now, hole, rtt)
	}
}

func TestFastRetransmitNewReno(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 2})
	burst, now := growTo(t, s, 16)
	pre := s.Conn().Cwnd
	hole := burst[1].ID
	tripleDup(s, now+rtt, hole, 9)
	if !s.InRecovery() {
		t.Fatal("three dup ACKs must enter fast recovery")
	}
	if got := s.Conn().Ssthresh; got > pre/2+1 {
		t.Fatalf("ssthresh = %v, want ~half of %v", got, pre)
	}
	// The hole goes out immediately, regardless of the window.
	out := s.SendBurst(now + rtt)
	if len(out) == 0 || out[0].ID != hole || !out[0].Retransmit {
		t.Fatalf("expected fast retransmission of %d, got %+v", hole, out)
	}
}

func TestFastRetransmitNeedsThreeDups(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 2})
	burst, now := growTo(t, s, 16)
	hole := burst[1].ID
	s.BeginRound(9)
	s.DeliverAck(now+rtt, hole, rtt)
	s.DeliverAck(now+rtt, hole, rtt) // only two duplicates
	s.DeliverAck(now+rtt, hole, rtt)
	if s.InRecovery() {
		t.Fatal("two dup ACKs must not trigger recovery")
	}
}

func TestNewRenoPartialAckRetransmits(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 2})
	burst, now := growTo(t, s, 16)
	hole1, hole2 := burst[1].ID, burst[3].ID
	tripleDup(s, now+rtt, hole1, 9)
	s.SendBurst(now + rtt) // the retransmission of hole1
	// Partial ACK: covers hole1 but not hole2.
	s.BeginRound(10)
	s.DeliverAck(now+2*rtt, hole2, rtt)
	if !s.InRecovery() {
		t.Fatal("NewReno must stay in recovery on a partial ACK")
	}
	out := s.SendBurst(now + 2*rtt)
	if len(out) == 0 || out[0].ID != hole2 || !out[0].Retransmit {
		t.Fatalf("expected retransmission of hole2 %d, got %+v", hole2, out)
	}
}

func TestRenoExitsOnPartialAck(t *testing.T) {
	s := New(cc.NewReno(), Options{TotalSegments: 1 << 20, MSS: 536, InitialWindow: 2, Recovery: RecoveryReno})
	burst, now := growTo(t, s, 16)
	hole1, hole2 := burst[1].ID, burst[3].ID
	tripleDup(s, now+rtt, hole1, 9)
	s.SendBurst(now + rtt)
	s.BeginRound(10)
	s.DeliverAck(now+2*rtt, hole2, rtt)
	if s.InRecovery() {
		t.Fatal("classic Reno leaves recovery on the first partial ACK")
	}
	// The recover guard forbids a second fast retransmit for hole2:
	// further dup ACKs must not re-trigger.
	for i := 0; i < 5; i++ {
		s.DeliverAck(now+2*rtt, hole2, rtt)
	}
	if s.InRecovery() {
		t.Fatal("dup ACKs below recover must not re-enter recovery")
	}
}

func TestTahoeCollapsesToOne(t *testing.T) {
	s := New(cc.NewReno(), Options{TotalSegments: 1 << 20, MSS: 536, InitialWindow: 2, Recovery: RecoveryTahoe})
	burst, now := growTo(t, s, 16)
	tripleDup(s, now+rtt, burst[1].ID, 9)
	if s.Conn().Cwnd != 1 {
		t.Fatalf("tahoe cwnd = %v, want 1", s.Conn().Cwnd)
	}
	if !s.Conn().InSlowStart() {
		t.Fatal("tahoe must slow start after the fast retransmit")
	}
}

func TestBurstinessControlModeratesCwnd(t *testing.T) {
	mk := func(moderate bool) float64 {
		s := New(cc.NewReno(), Options{
			TotalSegments: 1 << 20, MSS: 536, InitialWindow: 2,
			BurstinessControl: moderate,
		})
		burst, now := growTo(t, s, 16)
		hole := burst[1].ID
		tripleDup(s, now+rtt, hole, 9)
		s.SendBurst(now + rtt) // retransmission
		// Full ACK: everything (including the retransmission) arrived.
		s.BeginRound(10)
		s.DeliverAck(now+2*rtt, burst[len(burst)-1].ID+1, rtt)
		return s.Conn().Cwnd
	}
	plain := mk(false)
	moderated := mk(true)
	if moderated >= plain {
		t.Fatalf("moderated cwnd %v not below plain %v", moderated, plain)
	}
	if moderated > maxBurst+1 {
		t.Fatalf("moderated cwnd = %v, want <= in-flight + %d", moderated, maxBurst)
	}
}

func TestRTOClearsRecoveryState(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 2})
	burst, now := growTo(t, s, 16)
	tripleDup(s, now+rtt, burst[1].ID, 9)
	if !s.InRecovery() {
		t.Fatal("setup failed")
	}
	s.OnRTOExpired(now + 10*time.Second)
	if s.InRecovery() {
		t.Fatal("RTO must cancel fast recovery")
	}
}

func TestSlowStartSchemeStrings(t *testing.T) {
	if SlowStartStandard.String() != "STANDARD" ||
		SlowStartLimited.String() != "LIMITED" ||
		SlowStartHybrid.String() != "HYSTART" ||
		SlowStartScheme(9).String() != "UNKNOWN" {
		t.Fatal("scheme names wrong")
	}
}

func TestLimitedSlowStartCapsGrowth(t *testing.T) {
	s := New(cc.NewReno(), Options{
		TotalSegments: 1 << 20, MSS: 536,
		InitialWindow: 128, // already above the RFC 3742 threshold
		SlowStart:     SlowStartLimited,
	})
	burst := s.SendBurst(0)
	s.BeginRound(1)
	for _, seg := range burst {
		s.DeliverAck(rtt, seg.ID+1, rtt)
	}
	// Standard slow start would double to 256; RFC 3742 allows at most
	// +50 per RTT above 100 packets.
	if got := s.Conn().Cwnd; got > 128+51 {
		t.Fatalf("limited slow start cwnd = %v, want <= 179", got)
	}
}

func TestHyStartExitsOnDelayIncrease(t *testing.T) {
	s := New(cc.NewReno(), Options{
		TotalSegments: 1 << 20, MSS: 536, InitialWindow: 16,
		SlowStart: SlowStartHybrid,
	})
	now := time.Duration(0)
	rtts := []time.Duration{800 * time.Millisecond, 800 * time.Millisecond, time.Second, time.Second}
	for r, sample := range rtts {
		burst := s.SendBurst(now)
		s.BeginRound(int64(r + 1))
		for _, seg := range burst {
			s.DeliverAck(now+sample, seg.ID+1, sample)
		}
		now += sample
	}
	// The 200ms delay increase at round 3 must have pulled ssthresh down
	// to the then-current window.
	if s.Conn().Ssthresh >= cc.InitialSsthresh {
		t.Fatal("HyStart did not exit slow start on the delay increase")
	}
}

func TestHyStartQuietUnderConstantRTT(t *testing.T) {
	// The paper's claim: hybrid slow start behaves like standard slow
	// start in CAAI's environments because the post-timeout RTT is
	// constant.
	s := New(cc.NewReno(), Options{
		TotalSegments: 1 << 20, MSS: 536, InitialWindow: 2,
		SlowStart: SlowStartHybrid,
	})
	burst, _ := growTo(t, s, 256) // pure doubling all the way
	if len(burst) < 256 {
		t.Fatal("growth interrupted")
	}
	if s.Conn().Ssthresh < cc.InitialSsthresh {
		t.Fatal("HyStart fired under a constant RTT")
	}
}
