package tcpsim

import "time"

// RecoveryScheme selects the loss recovery component of the sender (the
// paper's Fig. 1 lists it as a TCP component separate from congestion
// avoidance; TBIT identifies it, CAAI deliberately avoids triggering it by
// emulating timeouts instead of loss events).
type RecoveryScheme int

// Loss recovery schemes.
const (
	// RecoveryNewReno retransmits one hole per partial ACK and stays in
	// fast recovery until the entire pre-loss window is acknowledged
	// (RFC 3782). This is the default.
	RecoveryNewReno RecoveryScheme = iota
	// RecoveryReno exits fast recovery on the first partial ACK; a
	// second loss in the same window usually costs an RTO.
	RecoveryReno
	// RecoveryTahoe collapses to one segment and slow starts after a
	// fast retransmit.
	RecoveryTahoe
)

// String returns the scheme name.
func (r RecoveryScheme) String() string {
	switch r {
	case RecoveryNewReno:
		return "NEWRENO"
	case RecoveryReno:
		return "RENO"
	case RecoveryTahoe:
		return "TAHOE"
	default:
		return "UNKNOWN"
	}
}

// dupThreshold is the classic three-duplicate-ACK fast retransmit trigger.
const dupThreshold = 3

// maxBurst is the Linux cwnd-moderation burst allowance: on leaving fast
// recovery with burstiness control enabled, cwnd is clamped to
// packets-in-flight + maxBurst. This is the mechanism the paper cites for
// why the window right after a *loss event* may sit far below
// beta*w(tmo), making loss-event-based beta extraction unreliable
// (Section IV-B).
const maxBurst = 3

// handleDupAck processes one duplicate ACK. It returns true when the ACK
// triggered a fast retransmit. Duplicate ACKs below the recover point (the
// highest sequence outstanding at the last loss event) never re-trigger a
// fast retransmit, per RFC 3782's recover guard -- this is what forces
// classic Reno to take an RTO for a second hole in the same window.
func (s *Sender) handleDupAck(now time.Duration) bool {
	s.frtoPending = false // a dup ACK always cancels F-RTO probing
	if s.inRecovery || s.sndNxt == s.sndUna || s.sndUna < s.recover {
		return false
	}
	s.dupAcks++
	if s.dupAcks < dupThreshold {
		return false
	}
	s.dupAcks = 0
	s.enterFastRetransmit(now)
	return true
}

// enterFastRetransmit applies the scheme's fast retransmit response.
func (s *Sender) enterFastRetransmit(now time.Duration) {
	s.conn.Now = now
	s.conn.Ssthresh = s.alg.Ssthresh(s.conn)
	s.conn.LossEvents++
	s.retransmitNext = s.sndUna // retransmit the hole immediately
	s.recover = s.sndNxt
	switch s.opts.Recovery {
	case RecoveryTahoe:
		// Tahoe: same response as a timeout.
		s.conn.Cwnd = 1
		s.alg.OnTimeout(s.conn)
		s.resend = s.sndUna
		s.pipe = 0
	default:
		// Reno/NewReno: window continues from the new threshold.
		s.conn.Cwnd = s.conn.Ssthresh
		s.inRecovery = true
		// The hole's worth of data has left the network.
		if s.pipe > 0 {
			s.pipe--
		}
	}
}

// onAdvanceInRecovery handles an ACK that advances snd_una during fast
// recovery. prevUna is snd_una before the advance.
func (s *Sender) onAdvanceInRecovery(ackSeg int64) {
	s.dupAcks = 0
	if ackSeg >= s.recover {
		s.exitRecovery()
		return
	}
	// Partial ACK: another segment from the pre-loss window was lost.
	switch s.opts.Recovery {
	case RecoveryNewReno:
		// Retransmit the next hole and stay in recovery (RFC 3782).
		s.retransmitNext = s.sndUna
		if s.pipe > 0 {
			s.pipe--
		}
	case RecoveryReno:
		// Classic Reno deflates and leaves recovery; the remaining
		// hole is usually recovered only by the RTO.
		s.exitRecovery()
	}
}

// exitRecovery ends fast recovery, applying Linux-style cwnd moderation
// when burstiness control is enabled.
func (s *Sender) exitRecovery() {
	s.inRecovery = false
	s.retransmitNext = -1
	if s.opts.BurstinessControl {
		inFlight := float64(s.sndNxt - s.sndUna)
		if limit := inFlight + maxBurst; s.conn.Cwnd > limit {
			s.conn.Cwnd = limit
		}
	}
}
