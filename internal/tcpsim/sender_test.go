package tcpsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/cc"
)

const rtt = time.Second

// ackBurst delivers one in-order cumulative ACK per segment of the burst.
func ackBurst(s *Sender, burst []Segment, now time.Duration, round int64) {
	s.BeginRound(round)
	for _, seg := range burst {
		s.DeliverAck(now, seg.ID+1, rtt)
	}
}

func newRenoSender(total int64, opts Options) *Sender {
	opts.TotalSegments = total
	if opts.MSS == 0 {
		opts.MSS = 536
	}
	return New(cc.NewReno(), opts)
}

func TestInitialWindowRFC3390(t *testing.T) {
	tests := []struct {
		mss  int
		want float64
	}{
		{100, 4},  // min(4, max(2, 43.8)) = 4
		{536, 4},  // min(4, max(2, 8.17)) = 4
		{1460, 2}, // min(4, max(2, 3)) = 3 -> floor... 4380/1460 = 3
	}
	for _, tc := range tests {
		s := New(cc.NewReno(), Options{MSS: tc.mss, TotalSegments: 100})
		got := s.Conn().Cwnd
		if tc.mss == 1460 {
			if got != 3 {
				t.Fatalf("mss %d: IW = %v, want 3", tc.mss, got)
			}
			continue
		}
		if got != tc.want {
			t.Fatalf("mss %d: IW = %v, want %v", tc.mss, got, tc.want)
		}
	}
}

func TestSlowStartDoubling(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 2})
	now := time.Duration(0)
	var sizes []int
	for r := int64(1); r <= 6; r++ {
		burst := s.SendBurst(now)
		sizes = append(sizes, len(burst))
		ackBurst(s, burst, now+rtt, r)
		now += rtt
	}
	want := []int{2, 4, 8, 16, 32, 64}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("round %d burst = %d, want %d (all: %v)", i, sizes[i], want[i], sizes)
		}
	}
}

func TestWindowRespectsBuffersAndClamps(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 64, SendBufferSegments: 10})
	if got := len(s.SendBurst(0)); got != 10 {
		t.Fatalf("send buffer cap: burst = %d, want 10", got)
	}
	s2 := newRenoSender(1<<20, Options{InitialWindow: 64, CwndClamp: 7})
	if got := len(s2.SendBurst(0)); got != 7 {
		t.Fatalf("cwnd clamp: burst = %d, want 7", got)
	}
	s3 := newRenoSender(1<<20, Options{InitialWindow: 64, ReceiveWindow: 5})
	if got := len(s3.SendBurst(0)); got != 5 {
		t.Fatalf("receive window: burst = %d, want 5", got)
	}
}

func TestDataExhaustion(t *testing.T) {
	s := newRenoSender(5, Options{InitialWindow: 10})
	burst := s.SendBurst(0)
	if len(burst) != 5 {
		t.Fatalf("burst = %d, want all 5 segments", len(burst))
	}
	if s.DataExhausted() {
		t.Fatal("not exhausted until acked")
	}
	ackBurst(s, burst, rtt, 1)
	if !s.DataExhausted() {
		t.Fatal("exhausted after final ack")
	}
	if got := s.SendBurst(rtt); got != nil {
		t.Fatalf("burst after exhaustion = %v", got)
	}
}

func TestRTOEstimation(t *testing.T) {
	s := newRenoSender(1<<20, Options{})
	if got := s.RTO(); got != 3*time.Second {
		t.Fatalf("initial RTO = %v, want 3s", got)
	}
	burst := s.SendBurst(0)
	ackBurst(s, burst, rtt, 1)
	// After a 1s sample: RTO = srtt + 4*rttvar = 1 + 4*0.5 = 3s; further
	// stable samples shrink it toward the 1s floor.
	for r := int64(2); r < 12; r++ {
		b := s.SendBurst(time.Duration(r) * rtt)
		ackBurst(s, b, time.Duration(r+1)*rtt, r)
	}
	got := s.RTO()
	if got < time.Second || got > 2*time.Second {
		t.Fatalf("converged RTO = %v, want [1s, 2s]", got)
	}
}

func TestTimeoutRecovery(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 2})
	now := time.Duration(0)
	var burst []Segment
	for r := int64(1); r <= 5; r++ {
		burst = s.SendBurst(now)
		ackBurst(s, burst, now+rtt, r)
		now += rtt
	}
	burst = s.SendBurst(now) // 64 segments, never acked
	if len(burst) != 64 {
		t.Fatalf("burst = %d, want 64", len(burst))
	}
	cwndBefore := s.Conn().Cwnd
	now += s.RTO()
	s.OnRTOExpired(now)
	if !s.TimedOut() {
		t.Fatal("TimedOut not set")
	}
	if s.Conn().Cwnd != 1 {
		t.Fatalf("cwnd after RTO = %v, want 1", s.Conn().Cwnd)
	}
	wantTh := cwndBefore / 2
	if math.Abs(s.Conn().Ssthresh-wantTh) > 1 {
		t.Fatalf("ssthresh = %v, want ~%v", s.Conn().Ssthresh, wantTh)
	}
	// The retransmission is the first unacked segment.
	re := s.SendBurst(now)
	if len(re) != 1 || !re[0].Retransmit || re[0].ID != burst[0].ID {
		t.Fatalf("retransmission = %+v, want segment %d", re, burst[0].ID)
	}
	// A cumulative ACK for everything received re-opens new data.
	s.BeginRound(7)
	s.DeliverAck(now+rtt, burst[len(burst)-1].ID+1, rtt)
	next := s.SendBurst(now + rtt)
	if len(next) == 0 || next[0].Retransmit {
		t.Fatalf("expected new data after recovery, got %+v", next)
	}
}

func TestRTOBackoffDoubles(t *testing.T) {
	s := newRenoSender(1<<20, Options{})
	burst := s.SendBurst(0)
	ackBurst(s, burst, rtt, 1)
	base := s.RTO()
	s.OnRTOExpired(base)
	if got := s.RTO(); got != 2*base {
		t.Fatalf("backed-off RTO = %v, want %v", got, 2*base)
	}
	s.OnRTOExpired(3 * base)
	if got := s.RTO(); got != 4*base {
		t.Fatalf("double backoff = %v, want %v", got, 4*base)
	}
}

func TestKarnRuleSkipsRetransmitSamples(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 4})
	burst := s.SendBurst(0)
	s.OnRTOExpired(3 * time.Second)
	re := s.SendBurst(3 * time.Second)
	if len(re) == 0 || !re[0].Retransmit {
		t.Fatal("expected retransmission")
	}
	// ACK of a retransmitted segment must not seed the RTT estimator.
	s.BeginRound(2)
	s.DeliverAck(4*time.Second, re[0].ID+1, 123*time.Millisecond)
	if s.srtt != 0 {
		t.Fatalf("srtt = %v, want unset (Karn)", s.srtt)
	}
	_ = burst
}

func TestFRTOSpuriousUndoWithoutDupAck(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 2, FRTO: true})
	now := time.Duration(0)
	var burst []Segment
	for r := int64(1); r <= 4; r++ {
		burst = s.SendBurst(now)
		ackBurst(s, burst, now+rtt, r)
		now += rtt
	}
	burst = s.SendBurst(now)
	cwndBefore := s.Conn().Cwnd
	thBefore := s.Conn().Ssthresh
	s.OnRTOExpired(now + s.RTO())
	// First ACK advances snd_una: F-RTO declares the timeout spurious
	// and restores the congestion state.
	s.BeginRound(6)
	s.DeliverAck(now+s.RTO()+rtt, burst[len(burst)-1].ID+1, rtt)
	if s.Conn().Cwnd != cwndBefore || s.Conn().Ssthresh != thBefore {
		t.Fatalf("no undo: cwnd=%v ssthresh=%v, want %v/%v",
			s.Conn().Cwnd, s.Conn().Ssthresh, cwndBefore, thBefore)
	}
}

func TestFRTODefusedByDupAck(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 2, FRTO: true})
	now := time.Duration(0)
	var burst []Segment
	var lastAck int64
	for r := int64(1); r <= 4; r++ {
		burst = s.SendBurst(now)
		ackBurst(s, burst, now+rtt, r)
		lastAck = burst[len(burst)-1].ID + 1
		now += rtt
	}
	burst = s.SendBurst(now)
	s.OnRTOExpired(now + s.RTO())
	// CAAI's counter-measure: a duplicate ACK first.
	s.DeliverAck(now+s.RTO(), lastAck, 0)
	// Now the advancing ACK must NOT undo: conventional recovery.
	s.BeginRound(6)
	s.DeliverAck(now+s.RTO()+rtt, burst[len(burst)-1].ID+1, rtt)
	if s.Conn().Cwnd > 3 {
		t.Fatalf("cwnd = %v, want slow start from ~1", s.Conn().Cwnd)
	}
	if !s.Conn().InSlowStart() {
		t.Fatal("must be in slow start after conventional recovery")
	}
}

func TestIgnoreRTO(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 4, IgnoreRTO: true})
	s.SendBurst(0)
	s.OnRTOExpired(5 * time.Second)
	if s.TimedOut() {
		t.Fatal("IgnoreRTO server must not react to the RTO")
	}
	if got := s.SendBurst(5 * time.Second); got != nil {
		t.Fatalf("silent server sent %v", got)
	}
}

func TestPostTimeoutClamp(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 8, PostTimeoutClamp: 1})
	if got := len(s.SendBurst(0)); got != 8 {
		t.Fatalf("pre-timeout burst = %d, want 8 (clamp must not apply)", got)
	}
	s.OnRTOExpired(3 * time.Second)
	if got := len(s.SendBurst(3 * time.Second)); got != 1 {
		t.Fatalf("post-timeout burst = %d, want 1", got)
	}
	// Even after ACKs grow cwnd, the clamp pins the window.
	s.BeginRound(2)
	s.DeliverAck(4*time.Second, 8, rtt)
	if got := len(s.SendBurst(4 * time.Second)); got != 1 {
		t.Fatalf("clamped burst = %d, want 1", got)
	}
}

func TestInitialSsthreshOption(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialSsthresh: 10, InitialWindow: 2})
	if s.Conn().Ssthresh != 10 {
		t.Fatalf("ssthresh = %v, want 10", s.Conn().Ssthresh)
	}
	if s.CurrentSsthresh() != 10 {
		t.Fatal("CurrentSsthresh mismatch")
	}
}

func TestDeliverAckIgnoresStaleAcks(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 4})
	burst := s.SendBurst(0)
	ackBurst(s, burst, rtt, 1)
	cwnd := s.Conn().Cwnd
	s.DeliverAck(rtt, burst[0].ID, rtt) // stale duplicate
	if s.Conn().Cwnd != cwnd {
		t.Fatal("duplicate ACK changed the window")
	}
}

func TestPipeAccounting(t *testing.T) {
	s := newRenoSender(1<<20, Options{InitialWindow: 4})
	b1 := s.SendBurst(0)
	if len(b1) != 4 {
		t.Fatalf("burst = %d", len(b1))
	}
	// Window full: no more sends until ACKs arrive.
	if got := s.SendBurst(0); got != nil {
		t.Fatalf("overcommitted burst: %v", got)
	}
	// ACK two segments: two slots open (plus slow start growth).
	s.BeginRound(1)
	s.DeliverAck(rtt, 2, rtt)
	got := len(s.SendBurst(rtt))
	if got < 2 {
		t.Fatalf("freed burst = %d, want >= 2", got)
	}
}
