package tcpsim

import (
	"testing"
	"time"

	"repro/internal/cc"
)

// TestAppendBurstZeroAllocs pins the steady-state zero-allocation contract
// of burst generation: with a caller-recycled buffer, a full send/ack round
// must not touch the heap once the buffer has grown to the window size.
func TestAppendBurstZeroAllocs(t *testing.T) {
	alg, err := cc.New("RENO")
	if err != nil {
		t.Fatal(err)
	}
	s := New(alg, Options{MSS: 536, TotalSegments: 1 << 40})
	rtt := 100 * time.Millisecond
	now := time.Duration(0)
	var burst []Segment

	round := func() {
		now += rtt
		burst = s.AppendBurst(burst[:0], now)
		s.BeginRound(s.conn.Round + 1)
		for k := range burst {
			s.DeliverAck(now, burst[0].ID+int64(k)+1, rtt)
		}
	}
	// Warm up: grow the window (and the burst buffer) past any transient.
	for i := 0; i < 12; i++ {
		round()
	}
	// Pin the window so the buffer stops growing between runs.
	s.conn.Ssthresh = s.conn.Cwnd

	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Fatalf("send/ack round allocates %v per run, want 0", allocs)
	}
}
