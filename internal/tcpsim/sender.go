// Package tcpsim implements the TCP sender of a simulated Web server: the
// sequence space, slow start / congestion avoidance driven by a pluggable
// congestion avoidance algorithm (internal/cc), retransmission timeouts
// with RFC 6298 estimation and exponential backoff, F-RTO (RFC 5682)
// spurious-timeout detection, and the send-buffer / window clamps that
// produce the paper's special trace shapes.
//
// The sender is driven round-by-round by internal/probe: each emulated RTT
// it emits one burst, then processes the ACKs the prober chose to deliver.
package tcpsim

import (
	"math"
	"time"

	"repro/internal/cc"
)

// Options configures a Sender.
type Options struct {
	// MSS is the negotiated maximum segment size in bytes.
	MSS int
	// InitialWindow is the initial congestion window in packets; 0 means
	// the RFC 3390 default min(4, max(2, 4380/MSS)).
	InitialWindow float64
	// TotalSegments is how much application data is available to send.
	TotalSegments int64
	// ReceiveWindow is the peer's advertised window in segments; 0 means
	// effectively unlimited (CAAI advertises ~1 GB).
	ReceiveWindow int64
	// SendBufferSegments caps the number of in-flight segments (a small
	// send buffer produces the paper's "Bounded Window" traces); 0 means
	// unlimited.
	SendBufferSegments int64
	// CwndClamp caps the congestion window in packets (the kernel's
	// snd_cwnd_clamp; produces "Nonincreasing Window" traces); 0 means
	// no clamp.
	CwndClamp float64
	// PostTimeoutClamp caps the congestion window after the first
	// timeout ("Remaining at 1 Packet" traces use 1); 0 means no clamp.
	PostTimeoutClamp float64
	// FRTO enables forward RTO-recovery (RFC 5682).
	FRTO bool
	// IgnoreRTO models servers that never respond to the emulated
	// timeout (one of the paper's invalid-trace causes).
	IgnoreRTO bool
	// InitialSsthresh overrides the infinite initial slow start
	// threshold (slow start threshold caching); 0 means infinite.
	InitialSsthresh float64
	// Recovery selects the loss recovery component (default NewReno).
	Recovery RecoveryScheme
	// BurstinessControl enables Linux-style cwnd moderation when fast
	// recovery ends (see Section IV-B of the paper).
	BurstinessControl bool
	// SlowStart selects the slow start component (default standard).
	SlowStart SlowStartScheme
}

// Segment is one transmitted data segment, identified by its index in the
// segment sequence space (bytes = ID*MSS).
type Segment struct {
	// ID is the segment sequence number in segments.
	ID int64
	// Retransmit marks segments sent again after a timeout.
	Retransmit bool
}

// Sender is a simulated TCP sender. Not safe for concurrent use.
type Sender struct {
	alg  cc.Algorithm
	conn *cc.Conn
	opts Options

	sndUna int64 // lowest unacknowledged segment
	sndNxt int64 // next never-sent segment
	resend int64 // next segment to (re)transmit
	pipe   int64 // estimated segments in flight

	srtt    time.Duration
	rttvar  time.Duration
	backoff int // RTO exponential backoff exponent

	retransHigh  int64 // highest segment sent as a retransmission
	frtoPending  bool
	prevCwnd     float64 // cwnd before the last RTO (for F-RTO undo)
	prevSsthresh float64

	// Fast retransmit / fast recovery state.
	dupAcks        int
	inRecovery     bool
	recover        int64 // snd_nxt when recovery was entered
	retransmitNext int64 // pending single retransmission, -1 when none

	// Hybrid slow start state (see slowstart.go).
	hystart hystartState

	timedOut bool
}

// New creates a sender running alg with the given options. The algorithm
// instance must be dedicated to this sender.
func New(alg cc.Algorithm, opts Options) *Sender {
	s := new(Sender)
	s.Renew(alg, opts)
	return s
}

// Renew re-initializes s in place for a fresh connection running alg,
// recycling the Sender and its Conn allocations: the post-Renew state is
// exactly what New returns. The algorithm instance must be dedicated to
// this sender for the connection's lifetime (Reset rewinds it here, as New
// does). This is the zero-allocation path for probers that open thousands
// of sequential connections.
func (s *Sender) Renew(alg cc.Algorithm, opts Options) {
	if opts.MSS <= 0 {
		opts.MSS = 1460
	}
	iw := opts.InitialWindow
	if iw <= 0 {
		iw = math.Min(4, math.Max(2, 4380/float64(opts.MSS)))
		iw = math.Floor(iw)
	}
	conn := s.conn
	if conn == nil {
		conn = cc.NewConn(opts.MSS, iw)
	} else {
		conn.Reinit(opts.MSS, iw)
	}
	if opts.InitialSsthresh > 0 {
		conn.Ssthresh = opts.InitialSsthresh
	}
	*s = Sender{alg: alg, conn: conn, opts: opts, retransHigh: -1, retransmitNext: -1}
	alg.Reset(conn)
}

// Conn exposes the congestion state (read-mostly; the prober reads Cwnd for
// diagnostics and tests assert on it).
func (s *Sender) Conn() *cc.Conn { return s.conn }

// Algorithm returns the congestion avoidance component in use.
func (s *Sender) Algorithm() cc.Algorithm { return s.alg }

// TimedOut reports whether the sender has experienced at least one RTO.
func (s *Sender) TimedOut() bool { return s.timedOut }

// CurrentSsthresh returns the live slow start threshold (cached by servers
// that implement ssthresh caching).
func (s *Sender) CurrentSsthresh() float64 { return s.conn.Ssthresh }

// DataExhausted reports whether all application data has been sent and
// acknowledged.
func (s *Sender) DataExhausted() bool {
	return s.sndUna >= s.opts.TotalSegments
}

// window returns the current sending window in segments.
func (s *Sender) window() int64 {
	w := s.conn.Cwnd
	if s.opts.CwndClamp > 0 && w > s.opts.CwndClamp {
		w = s.opts.CwndClamp
	}
	if s.timedOut && s.opts.PostTimeoutClamp > 0 && w > s.opts.PostTimeoutClamp {
		w = s.opts.PostTimeoutClamp
	}
	win := int64(w)
	if s.opts.ReceiveWindow > 0 && win > s.opts.ReceiveWindow {
		win = s.opts.ReceiveWindow
	}
	if s.opts.SendBufferSegments > 0 && win > s.opts.SendBufferSegments {
		win = s.opts.SendBufferSegments
	}
	return win
}

// SendBurst emits the segments the window permits at time now. It returns
// an empty burst when the window is full or no data remains. Each call
// allocates a fresh slice; round-driven loops should use AppendBurst with
// a reused buffer instead.
func (s *Sender) SendBurst(now time.Duration) []Segment {
	return s.AppendBurst(nil, now)
}

// AppendBurst is SendBurst writing into caller-owned scratch: the burst
// segments are appended to dst and the grown slice returned, so a driver
// that recycles its buffer (dst[:0]) emits bursts with zero steady-state
// allocations. The appended contents are owned by the caller.
func (s *Sender) AppendBurst(dst []Segment, now time.Duration) []Segment {
	s.conn.Now = now
	// A pending fast retransmission goes out regardless of the window.
	if s.retransmitNext >= 0 {
		id := s.retransmitNext
		s.retransmitNext = -1
		if id > s.retransHigh {
			s.retransHigh = id
		}
		dst = append(dst, Segment{ID: id, Retransmit: true})
		s.pipe++
	}
	budget := s.window() - s.pipe
	if budget <= 0 {
		return dst
	}
	if s.resend >= s.sndNxt {
		// Fast path: nothing to retransmit, every segment is new data.
		end := s.resend + budget
		if end > s.opts.TotalSegments {
			end = s.opts.TotalSegments
		}
		for id := s.resend; id < end; id++ {
			dst = append(dst, Segment{ID: id})
		}
		if n := end - s.resend; n > 0 {
			s.pipe += n
			s.resend = end
			s.sndNxt = end
		}
		return dst
	}
	for i := int64(0); i < budget; i++ {
		id := s.resend
		if id >= s.opts.TotalSegments {
			break
		}
		retx := id < s.sndNxt
		if retx && id > s.retransHigh {
			s.retransHigh = id
		}
		dst = append(dst, Segment{ID: id, Retransmit: retx})
		s.resend++
		if s.resend > s.sndNxt {
			s.sndNxt = s.resend
		}
		s.pipe++
	}
	return dst
}

// BeginRound tells the congestion algorithm a new emulated RTT round is
// starting; the prober calls it before delivering the round's ACKs.
func (s *Sender) BeginRound(round int64) { s.conn.Round = round }

// DeliverAck processes one cumulative ACK for all segments below ackSeg,
// received at time now with the path RTT sample rtt. Duplicate ACKs
// (ackSeg <= sndUna) cancel a pending F-RTO probe, which is exactly the
// counter-measure CAAI relies on.
func (s *Sender) DeliverAck(now time.Duration, ackSeg int64, rtt time.Duration) {
	s.conn.Now = now
	if ackSeg <= s.sndUna {
		s.handleDupAck(now)
		return
	}
	acked := ackSeg - s.sndUna
	s.sndUna = ackSeg
	if s.resend < s.sndUna {
		s.resend = s.sndUna
	}
	s.pipe -= acked
	if s.pipe < 0 {
		s.pipe = 0
	}

	// Karn's rule: no RTT sample from segments that were retransmitted.
	sample := rtt
	if ackSeg <= s.retransHigh+1 && s.retransHigh >= 0 {
		sample = 0
	}
	if sample > 0 {
		s.updateRTT(sample)
		s.conn.ObserveRTT(sample)
	}

	if s.frtoPending {
		// The first ACK after the RTO advanced snd_una without a
		// duplicate ACK in between: the timeout was spurious; undo
		// the congestion response (RFC 5682 step 2b, simplified).
		s.frtoPending = false
		s.conn.Cwnd = s.prevCwnd
		s.conn.Ssthresh = s.prevSsthresh
		s.pipe = s.sndNxt - s.sndUna
		if s.pipe < 0 {
			s.pipe = 0
		}
		return
	}

	s.backoff = 0
	if s.inRecovery {
		// No window growth while recovering from a loss event.
		s.onAdvanceInRecovery(ackSeg)
		return
	}
	s.dupAcks = 0
	before := s.conn.Cwnd
	s.alg.OnAck(s.conn, int(acked), sample)
	if s.opts.SlowStart != SlowStartStandard {
		// The standard scheme is a no-op post-process; skipping the call
		// keeps it off the per-ACK path.
		s.applySlowStartScheme(before, sample)
	}
	if s.opts.CwndClamp > 0 && s.conn.Cwnd > s.opts.CwndClamp {
		s.conn.Cwnd = s.opts.CwndClamp
	}
}

// updateRTT applies the RFC 6298 estimator.
func (s *Sender) updateRTT(r time.Duration) {
	if s.srtt == 0 {
		s.srtt = r
		s.rttvar = r / 2
		return
	}
	d := s.srtt - r
	if d < 0 {
		d = -d
	}
	s.rttvar = (3*s.rttvar + d) / 4
	s.srtt = (7*s.srtt + r) / 8
}

// RTO returns the current retransmission timeout, including backoff.
func (s *Sender) RTO() time.Duration {
	var rto time.Duration
	if s.srtt == 0 {
		rto = 3 * time.Second // RFC 6298 initial RTO
	} else {
		rto = s.srtt + 4*s.rttvar
		if rto < time.Second {
			rto = time.Second // conservative RTO_min of classic stacks
		}
	}
	rto <<= s.backoff
	if rto > 60*time.Second {
		rto = 60 * time.Second
	}
	return rto
}

// OnRTOExpired applies the retransmission timeout at time now: the slow
// start threshold comes from the congestion algorithm's multiplicative
// decrease, the window collapses to one segment, and transmission restarts
// from the first unacknowledged segment. Servers configured to ignore the
// timeout (Options.IgnoreRTO) do nothing, which the prober observes as
// permanent silence.
func (s *Sender) OnRTOExpired(now time.Duration) {
	if s.opts.IgnoreRTO {
		return
	}
	s.conn.Now = now
	s.prevCwnd = s.conn.Cwnd
	s.prevSsthresh = s.conn.Ssthresh
	s.conn.Ssthresh = s.alg.Ssthresh(s.conn)
	s.conn.Cwnd = 1
	s.conn.LossEvents++
	s.alg.OnTimeout(s.conn)
	s.resend = s.sndUna
	s.pipe = 0
	s.timedOut = true
	s.backoff++
	s.dupAcks = 0
	s.inRecovery = false
	s.retransmitNext = -1
	if s.opts.FRTO {
		s.frtoPending = true
	}
}

// InRecovery reports whether the sender is in fast recovery.
func (s *Sender) InRecovery() bool { return s.inRecovery }
