package tcpsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cc"
)

// TestSenderInvariantsUnderRandomDriving fuzzes a sender with random
// bursts, ACK patterns (in-order, duplicate, stale, skipping), RTOs and
// timeouts, checking structural invariants after every step: the pipe
// never goes negative, snd_una never exceeds the data, cwnd stays at least
// one packet and finite, and bursts never exceed the configured buffers.
func TestSenderInvariantsUnderRandomDriving(t *testing.T) {
	algorithms := cc.Names()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		algName := algorithms[rng.Intn(len(algorithms))]
		alg, err := cc.New(algName)
		if err != nil {
			return false
		}
		opts := Options{
			MSS:           536,
			TotalSegments: int64(200 + rng.Intn(2000)),
			Recovery:      RecoveryScheme(rng.Intn(3)),
			SlowStart:     SlowStartScheme(rng.Intn(3)),
			FRTO:          rng.Intn(2) == 0,
		}
		if rng.Intn(3) == 0 {
			opts.SendBufferSegments = int64(8 + rng.Intn(64))
		}
		if rng.Intn(3) == 0 {
			opts.CwndClamp = float64(8 + rng.Intn(64))
		}
		s := New(alg, opts)
		now := time.Duration(0)
		var lastBurstEnd int64
		for step := 0; step < 120; step++ {
			burst := s.SendBurst(now)
			for _, seg := range burst {
				if seg.ID < 0 || seg.ID >= opts.TotalSegments {
					t.Logf("%s: segment %d out of range", algName, seg.ID)
					return false
				}
				if seg.ID+1 > lastBurstEnd {
					lastBurstEnd = seg.ID + 1
				}
			}
			if opts.SendBufferSegments > 0 && s.pipe > opts.SendBufferSegments {
				t.Logf("%s: pipe %d exceeds send buffer", algName, s.pipe)
				return false
			}
			// Random receiver behaviour.
			s.BeginRound(int64(step))
			arr := now + time.Second
			switch rng.Intn(5) {
			case 0: // ack everything seen so far
				s.DeliverAck(arr, lastBurstEnd, time.Second)
			case 1: // partial ack
				if lastBurstEnd > 0 {
					s.DeliverAck(arr, rng.Int63n(lastBurstEnd)+1, time.Second)
				}
			case 2: // duplicate storm
				for i := 0; i < rng.Intn(6); i++ {
					s.DeliverAck(arr, s.sndUna, time.Second)
				}
			case 3: // silence, then RTO
				now += s.RTO()
				s.OnRTOExpired(now)
			case 4: // per-segment in-order acks
				for _, seg := range burst {
					s.DeliverAck(arr, seg.ID+1, time.Second)
				}
			}
			now = arr

			// Invariants.
			if s.pipe < 0 {
				t.Logf("%s: negative pipe", algName)
				return false
			}
			if s.sndUna > opts.TotalSegments || s.sndUna > s.sndNxt {
				t.Logf("%s: snd_una %d beyond snd_nxt %d", algName, s.sndUna, s.sndNxt)
				return false
			}
			cw := s.Conn().Cwnd
			if cw < 1 || math.IsNaN(cw) || math.IsInf(cw, 0) {
				t.Logf("%s: bad cwnd %v", algName, cw)
				return false
			}
			th := s.Conn().Ssthresh
			if th < 1 || math.IsNaN(th) {
				t.Logf("%s: bad ssthresh %v", algName, th)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestAlgorithmsToleratErraticRTTs feeds every algorithm random RTT
// samples (including zero and extreme values) and checks the window stays
// finite and at least one packet.
func TestAlgorithmsToleratErraticRTTs(t *testing.T) {
	for _, name := range cc.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				alg, err := cc.New(name)
				if err != nil {
					return false
				}
				c := cc.NewConn(536, 2)
				c.Ssthresh = 64
				alg.Reset(c)
				for i := 0; i < 300; i++ {
					if rng.Intn(20) == 0 {
						c.Round++
					}
					if rng.Intn(40) == 0 {
						c.Ssthresh = alg.Ssthresh(c)
						c.Cwnd = 1
						alg.OnTimeout(c)
					}
					var rtt time.Duration
					switch rng.Intn(4) {
					case 0:
						rtt = 0 // invalid sample (Karn)
					case 1:
						rtt = time.Duration(rng.Intn(100)) * time.Millisecond
					case 2:
						rtt = time.Second
					case 3:
						rtt = time.Duration(rng.Intn(30)) * time.Second
					}
					c.Now += time.Second
					if rtt > 0 {
						c.ObserveRTT(rtt)
					}
					alg.OnAck(c, 1, rtt)
					if c.Cwnd < 1 || math.IsNaN(c.Cwnd) || math.IsInf(c.Cwnd, 0) {
						t.Logf("cwnd %v after %d acks", c.Cwnd, i)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}
