package tcpsim

import "time"

// SlowStartScheme selects the slow start component (another Fig. 1
// component). The paper notes that very few non-standard slow starts were
// deployed, and that CUBIC's hybrid slow start behaves like the standard
// one inside CAAI's emulated environments -- a claim the tests of this
// package verify directly.
type SlowStartScheme int

// Slow start schemes.
const (
	// SlowStartStandard doubles per RTT below ssthresh (RFC 5681).
	SlowStartStandard SlowStartScheme = iota
	// SlowStartLimited caps growth above 100 packets to 50 packets per
	// RTT (RFC 3742).
	SlowStartLimited
	// SlowStartHybrid is HyStart (Ha and Rhee 2008): standard doubling
	// plus a delay-increase heuristic that exits slow start early when
	// the per-round minimum RTT rises.
	SlowStartHybrid
)

// String returns the scheme name.
func (s SlowStartScheme) String() string {
	switch s {
	case SlowStartStandard:
		return "STANDARD"
	case SlowStartLimited:
		return "LIMITED"
	case SlowStartHybrid:
		return "HYSTART"
	default:
		return "UNKNOWN"
	}
}

// RFC 3742 limited slow start threshold.
const limitedSSThreshold = 100.0

// HyStart parameters from the kernel implementation.
const (
	hystartLowWindow = 16
	hystartDelayMin  = 4 * time.Millisecond
	hystartDelayMax  = 16 * time.Millisecond
)

// hystartState tracks the per-round minimum RTT for the delay-increase
// heuristic. (The ACK-train heuristic never fires under CAAI's deferred
// ACKs, which arrive as one instantaneous train.)
type hystartState struct {
	lastRound int64
	lastMin   time.Duration
	curMin    time.Duration
}

// applySlowStartScheme post-processes one ACK's window update. before is
// the window before the congestion algorithm ran; the algorithm has
// already applied the standard slow start increment when below ssthresh.
func (s *Sender) applySlowStartScheme(before float64, rtt time.Duration) {
	inSlowStart := before < s.conn.Ssthresh
	switch s.opts.SlowStart {
	case SlowStartLimited:
		if inSlowStart && before > limitedSSThreshold && s.conn.Cwnd > before {
			// Replace the exponential increment with the RFC 3742
			// bound of max_ssthresh/2 packets per RTT.
			s.conn.Cwnd = before + limitedSSThreshold/(2*before)
		}
	case SlowStartHybrid:
		if !inSlowStart || rtt <= 0 {
			return
		}
		h := &s.hystart
		if s.conn.Round != h.lastRound {
			if h.lastMin > 0 && h.curMin > 0 && s.conn.Cwnd >= hystartLowWindow {
				eta := h.lastMin / 8
				if eta < hystartDelayMin {
					eta = hystartDelayMin
				}
				if eta > hystartDelayMax {
					eta = hystartDelayMax
				}
				if h.curMin >= h.lastMin+eta {
					// Delay increase detected: leave slow
					// start at the current window.
					s.conn.Ssthresh = s.conn.Cwnd
				}
			}
			h.lastMin = h.curMin
			h.curMin = 0
			h.lastRound = s.conn.Round
		}
		if h.curMin == 0 || rtt < h.curMin {
			h.curMin = rtt
		}
	}
}
